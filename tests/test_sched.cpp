// Continuous-batching scheduler + pooled KV arena suite (ctest -L sched),
// DESIGN.md §13.
//
// Pinned claims:
//   - the KV-cached VpAdapter rollout is bitwise the legacy re-forward loop
//     (predict_uncached), at any NETLLM_THREADS,
//   - MiniGpt's embedding-path prefill/step pair reproduces the full forward
//     row-for-row, float-exact,
//   - the run-loop scheduler (bounded in-flight slots pulling jobs in
//     priority-then-admission order) serves every request bitwise identical
//     to the sequential drain, at any thread count,
//   - arena exhaustion is a deterministic shed-to-fallback, never an escaped
//     exception, and leases recycle so a serial drain fits a one-lease budget,
//   - a warm prefix hit serves the same floats as a cold prefill,
//   - tickets resolve continuously: a finished request's response is readable
//     while the batch is still draining, and unfinished/stale tickets throw,
//   - the KvCache bugfix sweep: clear() forgets the width, reserve() pins the
//     allocation, and Block admission wakes by notification, not by polling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/fault.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/signal.hpp"
#include "core/threadpool.hpp"
#include "envs/abr/policy.hpp"
#include "llm/minigpt.hpp"
#include "llm/tokenizer.hpp"
#include "netllm/serve.hpp"
#include "netllm/vp_adapter.hpp"
#include "nn/kv_arena.hpp"
#include "nn/transformer.hpp"

namespace ad = netllm::adapt;
namespace llm = netllm::llm;
namespace nc = netllm::core;
namespace nm = netllm::core::metrics;
namespace nn = netllm::nn;
namespace serve = netllm::serve;
namespace vp = netllm::vp;
using netllm::core::Rng;
using netllm::tensor::Tensor;

namespace {

class Sched : public ::testing::Test {
 protected:
  void SetUp() override {
    nm::set_enabled(true);
    nm::reset();
    netllm::core::fault::disarm_all();
    nc::clear_stop();
  }
  void TearDown() override {
    netllm::core::fault::disarm_all();
    nc::clear_stop();
    nm::reset();
    nc::set_global_threads(0);
  }
};

llm::MiniGptConfig tiny_config(std::int64_t max_seq = 112) {
  llm::MiniGptConfig cfg;
  cfg.vocab = llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = max_seq;
  return cfg;
}

std::shared_ptr<llm::MiniGpt> tiny_llm(std::uint64_t seed, std::int64_t max_seq = 112) {
  Rng rng(seed);
  return std::make_shared<llm::MiniGpt>(tiny_config(max_seq), rng);
}

std::shared_ptr<ad::VpAdapter> vp_adapter(std::uint64_t seed = 1) {
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.lora_alpha = 4.0f;
  Rng rng(seed);
  return std::make_shared<ad::VpAdapter>(tiny_llm(seed), cfg, rng);
}

std::vector<vp::VpSample> vp_samples(int n) {
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  return vp::build_dataset(setting, n);
}

void expect_same_rollout(const std::vector<vp::Viewport>& a, const std::vector<vp::Viewport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].roll, b[j].roll) << "step " << j;
    EXPECT_EQ(a[j].pitch, b[j].pitch) << "step " << j;
    EXPECT_EQ(a[j].yaw, b[j].yaw) << "step " << j;
  }
}

std::vector<float> to_vec(const Tensor& t) { return {t.data().begin(), t.data().end()}; }

}  // namespace

// ---------- cached rollout == legacy re-forward loop ----------

TEST_F(Sched, CachedPredictBitwiseMatchesUncachedAcrossThreadCounts) {
  const auto samples = vp_samples(3);
  auto adapter = vp_adapter(5);  // no arena attached: private reserved caches
  for (int threads : {1, 4}) {
    nc::set_global_threads(threads);
    for (const auto& s : samples) {
      const auto cached = adapter->predict(s.history, s.saliency, 4);
      const auto legacy = adapter->predict_uncached(s.history, s.saliency, 4);
      expect_same_rollout(cached, legacy);
    }
  }
}

TEST_F(Sched, PrefillAndStepEmbeddingsBitwiseMatchFullForward) {
  auto gpt = tiny_llm(17);
  const auto d = gpt->config().d_model;
  Rng rng(23);
  const std::int64_t total = 7, prefill_len = 4;
  std::vector<float> rows(static_cast<std::size_t>(total * d));
  for (auto& x : rows) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  auto first_rows = [&](std::int64_t t) {
    return Tensor::from({rows.begin(), rows.begin() + t * d}, {t, d});
  };

  std::vector<nn::KvCache> layers(static_cast<std::size_t>(gpt->config().n_layers));
  const auto prefill = gpt->prefill_embeddings(first_rows(prefill_len), layers);
  ASSERT_EQ(to_vec(prefill), to_vec(gpt->forward_embeddings(first_rows(prefill_len))));
  for (std::int64_t t = prefill_len; t < total; ++t) {
    const auto row =
        Tensor::from({rows.begin() + t * d, rows.begin() + (t + 1) * d}, {1, d});
    const auto step = to_vec(gpt->embeddings_step(row, layers));
    const auto full = to_vec(gpt->forward_embeddings(first_rows(t + 1)));
    ASSERT_EQ(step.size(), static_cast<std::size_t>(d));
    for (std::int64_t j = 0; j < d; ++j) {
      // Each incremental step is float-exact the last row of the uncached
      // forward over the grown sequence — no tolerance.
      ASSERT_EQ(step[static_cast<std::size_t>(j)],
                full[static_cast<std::size_t>((t * d) + j)])
          << "t=" << t << " j=" << j;
    }
  }
}

// ---------- scheduler: slots + priorities, bitwise vs sequential ----------

TEST_F(Sched, SlottedDrainBitwiseMatchesSequentialAcrossThreadCounts) {
  const auto samples = vp_samples(6);
  // The reference: the legacy uncached loop on a twin adapter (same seed).
  auto reference = vp_adapter(3);
  std::vector<std::vector<vp::Viewport>> expected;
  for (const auto& s : samples) {
    expected.push_back(reference->predict_uncached(s.history, s.saliency, 4));
  }
  for (int threads : {1, 4}) {
    nc::set_global_threads(threads);
    serve::EngineConfig cfg;
    cfg.max_slots = 2;  // fewer slots than requests: slots must pull new work
    auto engine =
        std::make_shared<serve::InferenceEngine>(vp_adapter(3), nullptr, nullptr, cfg);
    ASSERT_NE(engine->kv_arena(), nullptr);  // arena is on by default for adapters
    for (const auto& s : samples) {
      engine->submit(serve::VpRequest{s.history, s.saliency, 4});
    }
    const auto report = engine->run();
    EXPECT_EQ(report.requests, samples.size());
    EXPECT_EQ(report.llm, samples.size());
    ASSERT_EQ(engine->vp_responses().size(), samples.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      expect_same_rollout(engine->vp_responses()[i].viewports, expected[i]);
    }
  }
}

namespace {

/// Records execution order (threads=1 makes the order the schedule).
class RecordingVp : public vp::VpPredictor {
 public:
  RecordingVp(std::vector<std::string>* log, std::mutex* mu) : log_(log), mu_(mu) {}
  std::string name() const override { return "recording"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    std::lock_guard<std::mutex> lock(*mu_);
    log_->push_back("vp" + std::to_string(horizon));
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }

 private:
  std::vector<std::string>* log_;
  std::mutex* mu_;
};

class RecordingAbr : public netllm::abr::AbrPolicy {
 public:
  RecordingAbr(std::vector<std::string>* log, std::mutex* mu) : log_(log), mu_(mu) {}
  std::string name() const override { return "recording"; }
  int choose_level(const netllm::abr::Observation&) override {
    std::lock_guard<std::mutex> lock(*mu_);
    log_->push_back("abr");
    return 0;
  }

 private:
  std::vector<std::string>* log_;
  std::mutex* mu_;
};

netllm::abr::Observation abr_observation() {
  netllm::abr::Observation obs;
  obs.past_throughput_mbps.assign(netllm::abr::Observation::kHistory, 3.0);
  obs.past_delay_s.assign(netllm::abr::Observation::kHistory, 0.1);
  obs.next_chunk_sizes_mbytes = {0.5, 1.0, 2.0, 4.0};
  obs.future_chunk_sizes_mbytes.assign(netllm::abr::Observation::kHorizon * 4, 1.0);
  obs.buffer_s = 10.0;
  obs.chunks_remaining = 10;
  obs.num_levels = 4;
  return obs;
}

serve::VpRequest small_vp_request(int horizon) {
  vp::Viewport a, b;
  a.roll = 0.0, a.pitch = 0.0, a.yaw = 5.0;
  b.roll = 1.0, b.pitch = 2.0, b.yaw = 7.0;
  return serve::VpRequest{{a, b}, Tensor::zeros({4, 4}), horizon};
}

}  // namespace

TEST_F(Sched, PriorityOrdersTasksAdmissionOrderBreaksTies) {
  nc::set_global_threads(1);  // the pull order IS the execution order
  std::vector<std::string> log;
  std::mutex mu;
  serve::EngineConfig cfg;
  cfg.abr_priority = 1;  // ABR outranks VP (both default 0 otherwise)
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<RecordingVp>(&log, &mu), std::make_shared<RecordingAbr>(&log, &mu),
      nullptr, cfg);
  engine->submit(small_vp_request(2));
  engine->submit(small_vp_request(3));
  engine->submit(serve::AbrRequest{abr_observation()});
  engine->run();
  // The late-submitted ABR request jumps the queue; the VP pair keeps its
  // admission order (stable sort on equal priorities).
  ASSERT_EQ(log, (std::vector<std::string>{"abr", "vp2", "vp3"}));
}

// ---------- arena: exhaustion sheds, leases recycle ----------

TEST_F(Sched, ArenaExhaustionShedsDeterministicallyAndLeasesRecycle) {
  const auto samples = vp_samples(4);
  const int horizon = 4;
  auto probe = vp_adapter(9);
  const auto& lcfg = probe->llm().config();
  const std::int64_t page_rows = 16;
  const auto rows = static_cast<std::int64_t>(1 + samples[0].history.size()) + horizon - 1;
  const std::int64_t pages_per_lease =
      lcfg.n_layers * 2 * std::max<std::int64_t>((rows + page_rows - 1) / page_rows, 1);

  // Budget one page short of a single lease: every request is shed — a
  // deterministic fallback answer, never an escaped Exhausted.
  nc::set_global_threads(1);
  serve::EngineConfig starved;
  starved.arena_pages = pages_per_lease - 1;
  starved.arena_page_rows = page_rows;
  auto engine =
      std::make_shared<serve::InferenceEngine>(vp_adapter(9), nullptr, nullptr, starved);
  for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
  serve::BatchReport report;
  ASSERT_NO_THROW(report = engine->run());
  EXPECT_EQ(report.requests, samples.size());
  EXPECT_EQ(report.shed, samples.size());
  EXPECT_EQ(report.llm, 0u);
  for (const auto& r : engine->vp_responses()) {
    EXPECT_EQ(r.meta.source, serve::Source::kShed);
    EXPECT_EQ(r.viewports.size(), static_cast<std::size_t>(horizon));
  }
  // Shedding on pool pressure is load, not model failure.
  EXPECT_EQ(engine->vp_health(), ad::Health::kHealthy);
  EXPECT_EQ(nm::counter("serve.vp.shed").value(), static_cast<std::int64_t>(samples.size()));

  // Budget exactly one lease + one serial slot: every request is served —
  // returning a lease funds (and recycles buffers for) the next one.
  serve::EngineConfig serial;
  serial.arena_pages = pages_per_lease;
  serial.arena_page_rows = page_rows;
  serial.arena_prefix_entries = 0;  // no warm set: the budget fits leases only
  serial.max_slots = 1;
  auto engine2 =
      std::make_shared<serve::InferenceEngine>(vp_adapter(9), nullptr, nullptr, serial);
  for (const auto& s : samples) engine2->submit(serve::VpRequest{s.history, s.saliency, horizon});
  const auto report2 = engine2->run();
  EXPECT_EQ(report2.llm, samples.size());
  EXPECT_EQ(engine2->kv_arena()->pages_in_use(), 0);  // all leases returned

  // Oversubscribed slots at 4 threads racing one lease of budget: requests
  // may shed, but all of them resolve and nothing escapes run().
  nc::set_global_threads(4);
  auto engine3 =
      std::make_shared<serve::InferenceEngine>(vp_adapter(9), nullptr, nullptr, serial);
  for (const auto& s : samples) engine3->submit(serve::VpRequest{s.history, s.saliency, horizon});
  serve::BatchReport report3;
  ASSERT_NO_THROW(report3 = engine3->run());
  EXPECT_EQ(report3.requests, samples.size());
  EXPECT_EQ(report3.llm + report3.retried + report3.fallback + report3.shed, report3.requests);
}

TEST_F(Sched, PrefixHitServesBitwiseTheColdPrefillAnswer) {
  nc::set_global_threads(1);
  const auto samples = vp_samples(1);
  auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(13), nullptr, nullptr);
  const auto arena = engine->kv_arena();
  ASSERT_NE(arena, nullptr);
  // Same prompt skeleton twice in one batch: the first request publishes its
  // prefill, the second adopts it.
  engine->submit(serve::VpRequest{samples[0].history, samples[0].saliency, 4});
  engine->submit(serve::VpRequest{samples[0].history, samples[0].saliency, 4});
  const auto report = engine->run();
  EXPECT_EQ(report.llm, 2u);
  EXPECT_EQ(report.prefix_hits, 1u);
  EXPECT_EQ(arena->prefix_hits(), 1u);
  EXPECT_EQ(arena->prefix_misses(), 1u);
  EXPECT_EQ(nm::counter("kv.prefix.hits").value(), 1);
  // The adopted rows are the published request's own floats: the warm answer
  // is bitwise the cold one.
  ASSERT_EQ(engine->vp_responses().size(), 2u);
  expect_same_rollout(engine->vp_responses()[1].viewports, engine->vp_responses()[0].viewports);
  // The whole batch done, every lease is back; only the warm entry holds pages.
  EXPECT_EQ(arena->pages_in_use(), nm::gauge("kv.arena.pages_in_use").value());
  EXPECT_GT(arena->pages_in_use(), 0);  // the published prefix stays warm
}

// ---------- continuous ticket resolution ----------

namespace {

/// On its second call, resolves the batch's first ticket (already finished
/// at threads=1) and probes its own (must still be stale).
class ResolvingVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "resolving"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    if (++calls == 2 && engine) {
      try {
        first_resolved_mid_drain = engine->vp_response(first).viewports.size() == 2;
      } catch (const serve::StaleTicket&) {
        first_resolved_mid_drain = false;
      }
      try {
        engine->vp_response(serve::Ticket{first.epoch, 1});
        own_was_stale = false;
      } catch (const serve::StaleTicket&) {
        own_was_stale = true;  // this request's own slot is not done yet
      }
    }
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }

  serve::InferenceEngine* engine = nullptr;
  serve::Ticket first;
  int calls = 0;
  bool first_resolved_mid_drain = false;
  bool own_was_stale = false;
};

}  // namespace

TEST_F(Sched, TicketsResolveContinuouslyWhileTheBatchDrains) {
  nc::set_global_threads(1);
  auto primary = std::make_shared<ResolvingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr);
  primary->engine = engine.get();
  primary->first = engine->submit(small_vp_request(2));
  engine->submit(small_vp_request(2));
  // Before any drain, the ticket is stale-by-definition.
  EXPECT_THROW(engine->vp_response(primary->first), serve::StaleTicket);
  engine->run();
  EXPECT_EQ(primary->calls, 2);
  EXPECT_TRUE(primary->first_resolved_mid_drain);
  EXPECT_TRUE(primary->own_was_stale);
  // After the drain both resolve; after a later run() the generation is gone.
  EXPECT_NO_THROW(engine->vp_response(primary->first));
  engine->submit(small_vp_request(2));
  engine->run();
  EXPECT_THROW(engine->vp_response(primary->first), serve::StaleTicket);
}

// ---------- KvCache bugfix sweep ----------

TEST_F(Sched, KvCacheClearForgetsTheWidthForReuse) {
  nn::KvCache c;
  const std::vector<float> w4(4, 1.0f), w6(6, 2.0f);
  c.append(w4, w4);
  ASSERT_EQ(c.d_model, 4);
  ASSERT_EQ(c.len, 1);
  c.clear();
  // A cleared cache is indistinguishable from a fresh one: the width resets
  // with the rows (it used to stay sticky, poisoning cross-model reuse).
  EXPECT_EQ(c.d_model, 0);
  EXPECT_EQ(c.len, 0);
  c.append(w6, w6);
  EXPECT_EQ(c.d_model, 6);
  EXPECT_EQ(c.len, 1);
  EXPECT_EQ(c.k().size(), 6u);
  EXPECT_EQ(c.k_view().dim(1), 6);
}

TEST_F(Sched, KvCacheReservePinsTheAllocation) {
  nn::KvCache c;
  c.d_model = 8;
  const std::int64_t rows = 32;
  c.reserve(rows);
  const auto capacity = c.capacity_rows();
  ASSERT_GE(capacity, rows);
  std::vector<float> row(8, 0.5f);
  for (std::int64_t i = 0; i < rows; ++i) c.append(row, row);
  EXPECT_EQ(c.len, rows);
  // Every append landed inside the reservation: zero reallocations (the bare
  // insert used to grow geometrically, reallocating mid-decode).
  EXPECT_EQ(c.capacity_rows(), capacity);
  EXPECT_EQ(c.k().size(), static_cast<std::size_t>(rows * 8));
}

TEST_F(Sched, BlockAdmissionWakesByNotificationNotPolling) {
  serve::EngineConfig cfg;
  cfg.max_queue = 1;
  cfg.admission = serve::AdmissionPolicy::kBlock;
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<ResolvingVp>(), nullptr, nullptr, cfg);
  engine->submit(small_vp_request(2));
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    engine->submit(small_vp_request(3));  // blocks on the full queue
    admitted.store(true);
  });
  // Hold the producer blocked long enough that a 5 ms poll loop would rack
  // up ~30 wakeups, then drain. The predicate wait wakes once, on notify.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  engine->run();
  producer.join();
  EXPECT_TRUE(admitted.load());
  const auto wakeups = nm::counter("serve.admission.wakeups").value();
  EXPECT_GE(wakeups, 1);  // the instrumented predicate wait actually ran
  EXPECT_LE(wakeups, 4);  // and it did not poll the 150 ms away in slices
}
