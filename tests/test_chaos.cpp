// Chaos suite (ctest -L chaos): the DESIGN.md §12 overload/fault-storm
// layer around the serve engine.
//
// Pinned claims:
//   - the bounded admission queue enforces its policy: Reject throws the
//     named Overloaded error, ShedOldest serves the victim via the fallback
//     without primary compute, Block waits for a drain,
//   - a request whose admission deadline already passed is shed before any
//     primary compute is spent, and SLO accounting judges admission wait
//     PLUS serve time,
//   - transient primary failures retry with deterministic seeded backoff —
//     identical responses and counts at any NETLLM_THREADS,
//   - the per-task health machine walks Healthy -> Degraded -> Open and is
//     exported as the serve.<task>.health gauge,
//   - a seeded fault storm replays deterministically, and at 10x
//     oversubscription zero unhandled exceptions escape run(): every request
//     resolves with a named source,
//   - a shutdown request closes admission (named Overloaded) and drains the
//     queue via the fallback.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/abr/rule_based.hpp"
#include "core/fault.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/signal.hpp"
#include "core/threadpool.hpp"
#include "netllm/serve.hpp"

namespace fault = netllm::core::fault;
namespace nc = netllm::core;
namespace nm = netllm::core::metrics;
namespace serve = netllm::serve;
namespace vp = netllm::vp;
using netllm::adapt::Health;
using netllm::tensor::Tensor;

namespace {

/// Clean metrics/fault/stop/pool state on both sides of every test.
class Chaos : public ::testing::Test {
 protected:
  void SetUp() override {
    nm::set_enabled(true);
    nm::reset();
    fault::disarm_all();
    nc::clear_stop();
  }
  void TearDown() override {
    fault::disarm_all();
    nc::clear_stop();
    nm::set_enabled(true);
    nm::reset();
    nc::set_global_threads(0);
  }
};

vp::Viewport make_viewport(double roll, double pitch, double yaw) {
  vp::Viewport v;
  v.roll = roll;
  v.pitch = pitch;
  v.yaw = yaw;
  return v;
}

serve::VpRequest vp_request(int horizon = 2, double yaw = 10.0) {
  serve::VpRequest req;
  req.history = {make_viewport(0.0, 0.0, yaw), make_viewport(1.0, 2.0, yaw + 2.0)};
  req.saliency = Tensor::zeros({4, 4});
  req.horizon = horizon;
  return req;
}

/// Deterministic primary: `horizon` copies of the last history viewport.
/// Counts calls so tests can assert "no primary compute was spent".
class CountingVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "counting"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    ++calls;
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
  std::atomic<int> calls{0};
};

/// Fails the first `fail_first` attempts of each request, keyed by the
/// request's content (horizon), NOT by call order — so which attempts fail
/// is identical at any thread count, mirroring a deterministic transient
/// fault (a flaky downstream that recovers on retry).
class FlakyVp : public vp::VpPredictor {
 public:
  explicit FlakyVp(int fail_first) : fail_first_(fail_first) {}
  std::string name() const override { return "flaky"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    ++calls;
    int seen = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seen = attempts_by_key_[horizon]++;
    }
    if (seen < fail_first_) throw std::runtime_error("flaky primary: transient failure");
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
  std::atomic<int> calls{0};

 private:
  int fail_first_;
  std::mutex mu_;
  std::map<int, int> attempts_by_key_;
};

/// Primary whose behavior flips at runtime (healthy <-> down).
class SwitchableVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "switchable"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    if (fail.load()) throw std::runtime_error("primary down");
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
  std::atomic<bool> fail{false};
};

}  // namespace

// ---------- admission policies ----------

TEST_F(Chaos, RejectPolicyThrowsNamedOverloadedAtCapacity) {
  serve::EngineConfig cfg;
  cfg.max_queue = 2;
  cfg.admission = serve::AdmissionPolicy::kReject;
  auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<CountingVp>(), nullptr,
                                                         nullptr, cfg);
  engine->submit(vp_request());
  engine->submit(vp_request());
  try {
    engine->submit(vp_request());
    FAIL() << "expected Overloaded";
  } catch (const serve::Overloaded& e) {
    // Named error with the capacity in the message: the caller can tell an
    // overload rejection from any other runtime_error without string-parsing
    // guesswork (catch by type) and the log still says what the limit was.
    EXPECT_NE(std::string(e.what()).find("queue full"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
  EXPECT_EQ(nm::counter("serve.vp.rejected").value(), 1);
  // Nothing was queued for the rejected request, and a drain reopens space.
  EXPECT_EQ(engine->pending(), 2u);
  const auto report = engine->run();
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.llm, 2u);
  EXPECT_NO_THROW(engine->submit(vp_request()));
}

TEST_F(Chaos, ShedOldestServesVictimViaFallbackWithoutPrimaryCompute) {
  serve::EngineConfig cfg;
  cfg.max_queue = 2;
  cfg.admission = serve::AdmissionPolicy::kShedOldest;
  auto primary = std::make_shared<CountingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr, cfg);
  const auto victim = engine->submit(vp_request(2));
  engine->submit(vp_request(3));
  const auto admitted = engine->submit(vp_request(4));  // sheds the oldest (victim)
  EXPECT_EQ(admitted.index, 2u);  // the victim kept its slot; no ticket aliasing
  const auto report = engine->run();
  EXPECT_EQ(report.requests, 3u);
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.llm, 2u);
  EXPECT_EQ(primary->calls.load(), 2);  // zero primary compute for the victim
  // The victim's ticket still resolves — to a fallback-served answer.
  const auto& resp = engine->vp_response(victim);
  EXPECT_EQ(resp.meta.source, serve::Source::kShed);
  EXPECT_EQ(resp.viewports.size(), 2u);  // the LR fallback still answered
  EXPECT_EQ(engine->counters().shed, 1);
  EXPECT_EQ(nm::counter("serve.vp.shed").value(), 1);
  // Shedding is load, not model failure: health stays Healthy.
  EXPECT_EQ(engine->vp_health(), Health::kHealthy);
}

TEST_F(Chaos, BlockPolicyWaitsForADrainToFreeSpace) {
  serve::EngineConfig cfg;
  cfg.max_queue = 1;
  cfg.admission = serve::AdmissionPolicy::kBlock;
  auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<CountingVp>(), nullptr,
                                                         nullptr, cfg);
  engine->submit(vp_request(2));
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    engine->submit(vp_request(3));  // blocks until run() swaps the queue out
    admitted.store(true);
  });
  // The producer cannot be admitted before the drain frees the single slot.
  // (No sleep-based assertion on "still blocked" — that would be timing
  // flaky; the pinned claim is that it IS admitted once space appears.)
  const auto first = engine->run();
  producer.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(first.requests, 1u);
  const auto second = engine->run();
  EXPECT_EQ(second.requests, 1u);
  EXPECT_EQ(second.llm, 1u);
}

// ---------- deadlines ----------

TEST_F(Chaos, DeadlineAlreadyMissedShedsWithoutPrimaryCompute) {
  serve::EngineConfig cfg;
  cfg.deadline_ms = 1.0;
  auto primary = std::make_shared<CountingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr, cfg);
  const auto t = engine->submit(vp_request());
  // Let the admission deadline expire while the request sits queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto report = engine->run();
  EXPECT_EQ(primary->calls.load(), 0);  // SLO unmeetable: no compute burned
  EXPECT_EQ(report.shed, 1u);
  EXPECT_EQ(report.slo_miss, 1u);
  EXPECT_DOUBLE_EQ(report.slo_attainment(), 0.0);
  const auto& resp = engine->vp_response(t);
  EXPECT_EQ(resp.meta.source, serve::Source::kShed);
  EXPECT_TRUE(resp.meta.slo_miss);
  EXPECT_GE(resp.meta.admission_wait_ms, 1.0);
  EXPECT_EQ(nm::counter("serve.vp.slo_miss").value(), 1);
  // e2e percentiles cover admission wait; serve-side p50 does not.
  EXPECT_GE(report.e2e_p50_ms, 1.0);
}

TEST_F(Chaos, SloJudgesAdmissionWaitPlusServeTimeNeverComputeAlone) {
  serve::EngineConfig cfg;
  cfg.deadline_ms = 1000.0;  // generous: nothing sheds, nothing misses
  auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<CountingVp>(), nullptr,
                                                         nullptr, cfg);
  engine->submit(vp_request());
  engine->submit(vp_request());
  const auto report = engine->run();
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.llm, 2u);
  EXPECT_EQ(report.slo_miss, 0u);
  EXPECT_DOUBLE_EQ(report.slo_attainment(), 1.0);
  for (const auto& resp : engine->vp_responses()) {
    EXPECT_FALSE(resp.meta.slo_miss);
    EXPECT_GE(resp.meta.admission_wait_ms, 0.0);
  }
  EXPECT_GE(report.e2e_p99_ms, report.p99_ms);  // e2e includes the wait share
}

// ---------- deterministic retry ----------

TEST_F(Chaos, TransientFailuresRetryAndCountsMatchAcrossThreadCounts) {
  constexpr int kReqs = 8;
  auto run_once = [&](int threads) {
    nc::set_global_threads(threads);
    nm::reset();
    serve::EngineConfig cfg;
    cfg.retry_budget = 2;
    cfg.retry_backoff_ms = 0.0;  // keep the suite fast; jitter covered below
    auto primary = std::make_shared<FlakyVp>(/*fail_first=*/1);
    auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr, cfg);
    for (int i = 0; i < kReqs; ++i) engine->submit(vp_request(2 + i, 10.0 * i));
    const auto report = engine->run();
    std::vector<std::vector<vp::Viewport>> outs;
    for (const auto& r : engine->vp_responses()) {
      EXPECT_EQ(r.meta.source, serve::Source::kRetried);
      EXPECT_EQ(r.meta.retries, 1);
      outs.push_back(r.viewports);
    }
    return std::tuple{report.retried, engine->counters().retries, primary->calls.load(), outs};
  };
  const auto [retried1, retries1, calls1, outs1] = run_once(1);
  const auto [retried4, retries4, calls4, outs4] = run_once(4);
  EXPECT_EQ(retried1, static_cast<std::size_t>(kReqs));
  EXPECT_EQ(retried4, retried1);
  EXPECT_EQ(retries1, kReqs);  // one retry per request, at both thread counts
  EXPECT_EQ(retries4, retries1);
  EXPECT_EQ(calls1, 2 * kReqs);
  EXPECT_EQ(calls4, calls1);
  // Responses are bitwise identical across thread counts (the determinism
  // contract extends through the retry path).
  ASSERT_EQ(outs1.size(), outs4.size());
  for (std::size_t i = 0; i < outs1.size(); ++i) {
    ASSERT_EQ(outs1[i].size(), outs4[i].size());
    for (std::size_t j = 0; j < outs1[i].size(); ++j) {
      EXPECT_EQ(outs1[i][j].roll, outs4[i][j].roll);
      EXPECT_EQ(outs1[i][j].pitch, outs4[i][j].pitch);
      EXPECT_EQ(outs1[i][j].yaw, outs4[i][j].yaw);
    }
  }
}

TEST_F(Chaos, RetryBackoffIsSeededDoublingWithBoundedJitter) {
  serve::EngineConfig cfg;
  cfg.retry_backoff_ms = 4.0;
  cfg.retry_seed = 99;
  const std::uint64_t key = 0xabcdefULL;
  for (int attempt = 1; attempt <= 4; ++attempt) {
    const double b = serve::retry_backoff_ms(cfg, key, attempt);
    const double base = 4.0 * static_cast<double>(1 << (attempt - 1));
    EXPECT_GE(b, base * 0.5) << "attempt " << attempt;
    EXPECT_LT(b, base * 1.5) << "attempt " << attempt;
    // Re-evaluating the schedule gives the same delay: it is a pure function
    // of (config, request key, attempt) — replayable from a log line.
    EXPECT_EQ(b, serve::retry_backoff_ms(cfg, key, attempt));
  }
  // Different requests draw from different jitter streams.
  EXPECT_NE(serve::retry_backoff_ms(cfg, 1, 1), serve::retry_backoff_ms(cfg, 2, 1));
}

TEST_F(Chaos, LatencyOverrunsNeverRetry) {
  serve::EngineConfig cfg;
  cfg.latency_budget_ms = 0.5;
  cfg.retry_budget = 3;
  auto primary = std::make_shared<CountingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr, cfg);
  fault::arm("serve.batch",
             {.kind = fault::FaultKind::Delay, .times = -1, .delay_ms = 2.0, .message = ""});
  engine->submit(vp_request());
  const auto report = engine->run();
  // Retrying a slow primary under load would amplify the overload the budget
  // exists to contain: exactly one attempt, then the fallback.
  EXPECT_EQ(primary->calls.load(), 1);
  EXPECT_EQ(report.fallback, 1u);
  EXPECT_EQ(report.retried, 0u);
  EXPECT_EQ(engine->counters().fail_latency, 1);
  EXPECT_EQ(engine->counters().retries, 0);
}

// ---------- health state machine ----------

TEST_F(Chaos, HealthWalksHealthyDegradedOpenAndBack) {
  serve::EngineConfig cfg;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown = 1;
  auto primary = std::make_shared<SwitchableVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr, cfg);
  auto drive = [&] {
    engine->submit(vp_request());
    engine->run();
  };
  EXPECT_EQ(engine->vp_health(), Health::kHealthy);

  primary->fail.store(true);
  drive();  // failure 1 of 2: degraded, breaker still closed
  EXPECT_EQ(engine->vp_health(), Health::kDegraded);
  EXPECT_EQ(nm::gauge("serve.vp.health").value(), 1.0);

  drive();  // failure 2 trips the breaker
  EXPECT_EQ(engine->vp_health(), Health::kOpen);
  EXPECT_EQ(nm::gauge("serve.vp.health").value(), 2.0);
  EXPECT_EQ(engine->counters().breaker_trips, 1);

  primary->fail.store(false);
  drive();  // cooldown decision: served by fallback, breaker still open
  EXPECT_EQ(engine->vp_health(), Health::kOpen);

  drive();  // probe succeeds first try: healthy again
  EXPECT_EQ(engine->vp_health(), Health::kHealthy);
  EXPECT_EQ(nm::gauge("serve.vp.health").value(), 0.0);
}

// ---------- fault storms ----------

TEST_F(Chaos, ArmStormValidatesSitesAndParameters) {
  fault::StormPlan plan;
  plan.sites.push_back({.site = "serve.btach", .kind = fault::FaultKind::Throw});  // typo
  EXPECT_THROW(fault::arm_storm(plan), std::invalid_argument);
  plan.sites[0].site = "serve.batch";
  plan.sites[0].burst = 0;
  EXPECT_THROW(fault::arm_storm(plan), std::invalid_argument);
  plan.sites[0].burst = 1;
  plan.horizon = 0;
  EXPECT_THROW(fault::arm_storm(plan), std::invalid_argument);
  plan.horizon = 64;
  EXPECT_NO_THROW(fault::arm_storm(plan));
}

TEST_F(Chaos, FaultSiteActivityExportsToMetrics) {
  fault::arm("serve.batch",
             {.kind = fault::FaultKind::Throw, .after = 1, .times = 1, .message = ""});
  auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<CountingVp>(), nullptr,
                                                         nullptr);
  for (int i = 0; i < 3; ++i) engine->submit(vp_request());
  engine->run();
  // The registry counters mirror the site's own hit/fired accounting, so a
  // storm run shows up in the same metrics.json as the serve counters.
  EXPECT_EQ(nm::counter("fault.serve.batch.hits").value(), fault::hits("serve.batch"));
  EXPECT_EQ(nm::counter("fault.serve.batch.hits").value(), 3);
  EXPECT_EQ(nm::counter("fault.serve.batch.fired").value(), fault::fired("serve.batch"));
  EXPECT_EQ(nm::counter("fault.serve.batch.fired").value(), 1);
}

TEST_F(Chaos, StormReplaysDeterministicallyFromItsSeed) {
  nc::set_global_threads(1);  // per-site hit order is part of the replay contract
  constexpr int kReqs = 40;
  fault::StormPlan plan;
  plan.seed = 2024;
  plan.horizon = 256;
  plan.sites.push_back(
      {.site = "serve.batch", .kind = fault::FaultKind::Throw, .p = 0.25, .burst = 2});
  auto run_storm = [&] {
    fault::disarm_all();
    nm::reset();
    fault::arm_storm(plan);
    serve::EngineConfig cfg;
    cfg.breaker_threshold = 1000000;  // isolate the schedule from breaker dynamics
    auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<CountingVp>(),
                                                           nullptr, nullptr, cfg);
    for (int i = 0; i < kReqs; ++i) engine->submit(vp_request());
    const auto report = engine->run();
    return std::tuple{fault::fired("serve.batch"), report.llm, report.fallback};
  };
  const auto [fired1, llm1, fb1] = run_storm();
  const auto [fired2, llm2, fb2] = run_storm();
  EXPECT_EQ(fired1, fired2);  // same seed -> identical firing pattern
  EXPECT_EQ(llm1, llm2);
  EXPECT_EQ(fb1, fb2);
  // With p=0.25, burst=2 over 40 hits the storm neither fires always nor
  // never (probability of either < 1e-4): the schedule is a real mixture.
  EXPECT_GT(fired1, 0);
  EXPECT_LT(fired1, kReqs);
  EXPECT_EQ(static_cast<std::size_t>(fired1), fb1);  // every firing hit fell back
}

TEST_F(Chaos, StormSweepAt10xOversubscriptionLeavesNoRequestUnresolved) {
  serve::EngineConfig cfg;
  cfg.max_queue = 8;
  cfg.admission = serve::AdmissionPolicy::kShedOldest;
  cfg.deadline_ms = 250.0;
  cfg.retry_budget = 1;
  cfg.retry_backoff_ms = 0.0;
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<FlakyVp>(/*fail_first=*/0), std::make_shared<netllm::baselines::Bba>(),
      nullptr, cfg);
  fault::StormPlan plan;
  plan.seed = 7;
  plan.horizon = 512;
  plan.sites.push_back(
      {.site = "serve.batch", .kind = fault::FaultKind::Throw, .p = 0.2, .burst = 3});
  fault::arm_storm(plan);

  // 10x the queue bound, in waves of submits + drains so shedding, retries
  // and storms all overlap. Zero unhandled exceptions may escape run().
  const std::size_t target = cfg.max_queue * 10;
  std::size_t submitted = 0;
  serve::BatchReport total;
  while (submitted < target) {
    for (std::size_t i = 0; i < cfg.max_queue + 3 && submitted < target; ++i, ++submitted) {
      if (submitted % 3 == 0) {
        netllm::abr::Observation obs;
        obs.past_throughput_mbps.assign(netllm::abr::Observation::kHistory, 3.0);
        obs.past_delay_s.assign(netllm::abr::Observation::kHistory, 0.1);
        obs.next_chunk_sizes_mbytes = {0.5, 1.0, 2.0, 4.0};
        obs.future_chunk_sizes_mbytes.assign(netllm::abr::Observation::kHorizon * 4, 1.0);
        obs.buffer_s = 10.0;
        obs.chunks_remaining = 10;
        obs.num_levels = 4;
        engine->submit(serve::AbrRequest{obs});
      } else {
        engine->submit(vp_request(2, static_cast<double>(submitted)));
      }
    }
    serve::BatchReport report;
    ASSERT_NO_THROW(report = engine->run());
    // Every request resolved with a named source — nothing vanished.
    EXPECT_EQ(report.llm + report.retried + report.fallback + report.shed, report.requests);
    total.requests += report.requests;
    total.llm += report.llm;
    total.retried += report.retried;
    total.fallback += report.fallback;
    total.shed += report.shed;
  }
  EXPECT_EQ(total.requests, target);
  EXPECT_GT(total.fallback + total.retried + total.shed, 0u);  // the storm bit
  // Responses are well-formed even for degraded sources.
  for (const auto& r : engine->vp_responses()) EXPECT_EQ(r.viewports.size(), 2u);
}

// ---------- graceful shutdown ----------

TEST_F(Chaos, StopRequestClosesAdmissionAndDrainsQueueViaFallback) {
  auto primary = std::make_shared<CountingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(primary, nullptr, nullptr);
  std::vector<serve::Ticket> tickets;
  for (int i = 0; i < 3; ++i) tickets.push_back(engine->submit(vp_request()));
  nc::request_stop();
  // Admission is closed: a late submit is a named overload, not a hang.
  EXPECT_THROW(engine->submit(vp_request()), serve::Overloaded);
  // The queued requests still resolve — via the fallback, without burning
  // primary compute on a process that is going away.
  serve::BatchReport report;
  ASSERT_NO_THROW(report = engine->run());
  EXPECT_TRUE(report.drained_on_stop);
  EXPECT_EQ(report.requests, 3u);
  EXPECT_EQ(report.shed, 3u);
  EXPECT_EQ(primary->calls.load(), 0);
  for (const auto& t : tickets) {
    EXPECT_EQ(engine->vp_response(t).meta.source, serve::Source::kShed);
    EXPECT_EQ(engine->vp_response(t).viewports.size(), 2u);
  }
  nc::clear_stop();
  // After the supervisor clears the flag, the engine serves normally again.
  engine->submit(vp_request());
  const auto after = engine->run();
  EXPECT_EQ(after.llm, 1u);
  EXPECT_FALSE(after.drained_on_stop);
}
