// KV-cached decode + batched serving suite (ctest -L inference).
//
// The load-bearing claim of DESIGN.md §10 is that the cached decode path is
// the *same computation* as the uncached Fig. 2 baseline, not an
// approximation: prefill + decode_step reuse the row-wise tensor kernels
// whose accumulation order is position-independent, so logits — and
// therefore greedy token streams — must match bitwise, at any thread count.
// These tests pin that equality, the sliding-window clamp for prompts at or
// past `max_seq`, and the serving engine's per-request fault isolation.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/abr/rule_based.hpp"
#include "baselines/cjs/rule_based.hpp"
#include "baselines/vp/rule_based.hpp"
#include "core/fault.hpp"
#include "core/stats.hpp"
#include "core/threadpool.hpp"
#include "llm/minigpt.hpp"
#include "llm/tokenizer.hpp"
#include "netllm/api.hpp"

namespace ad = netllm::adapt;
namespace llm = netllm::llm;
namespace nc = netllm::core;
namespace serve = netllm::serve;
namespace vp = netllm::vp;
namespace fault = netllm::core::fault;
using netllm::core::Rng;
using netllm::tensor::Tensor;

namespace {

/// Restores the default global pool size when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { nc::set_global_threads(0); }
};

llm::MiniGptConfig tiny_config(std::int64_t max_seq = 48) {
  llm::MiniGptConfig cfg;
  cfg.vocab = llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = max_seq;
  return cfg;
}

std::shared_ptr<llm::MiniGpt> tiny_llm(std::uint64_t seed, std::int64_t max_seq = 48) {
  Rng rng(seed);
  return std::make_shared<llm::MiniGpt>(tiny_config(max_seq), rng);
}

std::vector<int> random_prompt(std::size_t len, Rng& rng, std::int64_t vocab) {
  std::vector<int> p(len);
  for (auto& t : p) t = static_cast<int>(rng.randint(3, vocab - 1));
  return p;
}

std::vector<float> to_vec(const Tensor& t) {
  return {t.data().begin(), t.data().end()};
}

class Decode : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

}  // namespace

// ---------- cached vs uncached equivalence ----------

TEST_F(Decode, CachedMatchesUncachedOverRandomizedPromptsAndSeeds) {
  for (std::uint64_t seed : {1u, 9u, 33u}) {
    auto gpt = tiny_llm(seed);
    Rng rng(seed * 101 + 5);
    for (std::size_t prompt_len : {1u, 2u, 7u, 19u}) {
      const auto prompt = random_prompt(prompt_len, rng, gpt->config().vocab);
      const int max_new = static_cast<int>(rng.randint(2, 12));
      const auto uncached = gpt->generate(prompt, max_new, /*stop_token=*/-1);
      const auto cached = gpt->generate(prompt, max_new, /*stop_token=*/-1, /*use_cache=*/true);
      ASSERT_EQ(uncached, cached) << "seed=" << seed << " prompt_len=" << prompt_len;
      ASSERT_EQ(uncached.size(), static_cast<std::size_t>(max_new));
    }
  }
}

TEST_F(Decode, CachedMatchesUncachedWithStopToken) {
  auto gpt = tiny_llm(4);
  Rng rng(77);
  const auto prompt = random_prompt(5, rng, gpt->config().vocab);
  // Use the first greedily generated token as the stop token: both paths
  // must agree on the (empty) stream and on a later stop mid-stream.
  const auto ref = gpt->generate(prompt, 8, -1);
  ASSERT_FALSE(ref.empty());
  for (int stop : {ref.front(), ref.back()}) {
    EXPECT_EQ(gpt->generate(prompt, 8, stop), gpt->generate(prompt, 8, stop, true));
  }
}

TEST_F(Decode, StepLogitsBitwiseEqualFullForward) {
  auto gpt = tiny_llm(12);
  Rng rng(3);
  const auto tokens = random_prompt(10, rng, gpt->config().vocab);

  auto st = gpt->make_decode_state();
  const std::size_t prefill_len = 4;
  Tensor logits = gpt->prefill(std::span<const int>(tokens.data(), prefill_len), st);
  // Last prefill row vs full forward over the same prefix: bitwise equal.
  const auto v = static_cast<std::size_t>(gpt->config().vocab);
  {
    const auto full = gpt->forward_tokens(std::span<const int>(tokens.data(), prefill_len));
    const auto a = to_vec(logits);
    const auto b = to_vec(full);
    ASSERT_EQ(a, b);  // prefill returns the full [T, vocab] logits
  }
  // Each decode_step row vs the last row of the uncached forward over the
  // grown prefix — element-for-element float equality, no tolerance.
  for (std::size_t t = prefill_len; t < tokens.size(); ++t) {
    logits = gpt->decode_step(tokens[t], st);
    const auto full = gpt->forward_tokens(std::span<const int>(tokens.data(), t + 1));
    const auto step_row = to_vec(logits);
    const auto full_data = to_vec(full);
    ASSERT_EQ(step_row.size(), v);
    for (std::size_t j = 0; j < v; ++j) {
      ASSERT_EQ(step_row[j], full_data[t * v + j]) << "t=" << t << " j=" << j;
    }
  }
}

TEST_F(Decode, PrefillCacheEqualsTokenByTokenCache) {
  auto gpt = tiny_llm(21);
  Rng rng(13);
  const auto tokens = random_prompt(9, rng, gpt->config().vocab);

  auto st_prefill = gpt->make_decode_state();
  gpt->prefill(tokens, st_prefill);

  auto st_steps = gpt->make_decode_state();
  for (std::size_t t = 0; t < tokens.size(); ++t) gpt->decode_step(tokens[t], st_steps);

  ASSERT_EQ(st_prefill.layers.size(), st_steps.layers.size());
  ASSERT_EQ(st_prefill.len(), static_cast<std::int64_t>(tokens.size()));
  for (std::size_t l = 0; l < st_prefill.layers.size(); ++l) {
    const auto& a = st_prefill.layers[l];
    const auto& b = st_steps.layers[l];
    ASSERT_EQ(a.len, b.len);
    ASSERT_EQ(a.k(), b.k()) << "layer " << l;  // bitwise: vector<float> equality
    ASSERT_EQ(a.v(), b.v()) << "layer " << l;
  }
}

TEST_F(Decode, BitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  auto gpt = tiny_llm(8);
  Rng rng(91);
  const auto prompt = random_prompt(6, rng, gpt->config().vocab);

  nc::set_global_threads(1);
  const auto uncached_1 = gpt->generate(prompt, 10, -1, false);
  const auto cached_1 = gpt->generate(prompt, 10, -1, true);
  auto st1 = gpt->make_decode_state();
  const auto logits_1 = to_vec(gpt->prefill(prompt, st1));

  nc::set_global_threads(4);
  const auto uncached_4 = gpt->generate(prompt, 10, -1, false);
  const auto cached_4 = gpt->generate(prompt, 10, -1, true);
  auto st4 = gpt->make_decode_state();
  const auto logits_4 = to_vec(gpt->prefill(prompt, st4));

  EXPECT_EQ(uncached_1, cached_1);
  EXPECT_EQ(uncached_1, uncached_4);
  EXPECT_EQ(cached_1, cached_4);
  EXPECT_EQ(logits_1, logits_4);  // float-exact across pool sizes
  for (std::size_t l = 0; l < st1.layers.size(); ++l) {
    EXPECT_EQ(st1.layers[l].k(), st4.layers[l].k());
    EXPECT_EQ(st1.layers[l].v(), st4.layers[l].v());
  }
}

// ---------- sliding window (prompts at or past max_seq) ----------

TEST_F(Decode, LongPromptClampsToSlidingWindow) {
  auto gpt = tiny_llm(5, /*max_seq=*/16);
  Rng rng(55);
  const auto long_prompt = random_prompt(40, rng, gpt->config().vocab);  // >> max_seq
  const std::vector<int> tail(long_prompt.end() - 16, long_prompt.end());

  // Used to walk past pos_embed_ (or return {}); now both paths serve the
  // window of the last max_seq tokens and agree with the explicit tail.
  const auto uncached = gpt->generate(long_prompt, 5, -1, false);
  const auto cached = gpt->generate(long_prompt, 5, -1, true);
  ASSERT_EQ(uncached.size(), 5u);
  EXPECT_EQ(uncached, cached);
  EXPECT_EQ(uncached, gpt->generate(tail, 5, -1, false));
}

TEST_F(Decode, GenerationSlidesAcrossTheContextBoundary) {
  auto gpt = tiny_llm(6, /*max_seq=*/12);
  Rng rng(19);
  // Prompt nearly fills the context; generation must cross max_seq and keep
  // going (the pre-fix code stopped dead at the boundary).
  const auto prompt = random_prompt(10, rng, gpt->config().vocab);
  const int max_new = 8;  // crosses 12 two tokens in
  const auto uncached = gpt->generate(prompt, max_new, -1, false);
  const auto cached = gpt->generate(prompt, max_new, -1, true);
  ASSERT_EQ(uncached.size(), static_cast<std::size_t>(max_new));
  EXPECT_EQ(uncached, cached);
}

TEST_F(Decode, DecodeStepThrowsWhenCacheFull) {
  auto gpt = tiny_llm(2, /*max_seq=*/8);
  Rng rng(1);
  const auto tokens = random_prompt(8, rng, gpt->config().vocab);
  auto st = gpt->make_decode_state();
  gpt->prefill(tokens, st);
  EXPECT_THROW(gpt->decode_step(3, st), std::invalid_argument);
  // generate() handles the same boundary internally via the sliding window.
  EXPECT_EQ(gpt->generate(tokens, 3, -1, true).size(), 3u);
}

// ---------- batched serving engine ----------

namespace {

serve::VpRequest vp_request(const vp::VpSample& sample, int horizon = 4) {
  return {sample.history, sample.saliency, horizon};
}

std::vector<vp::VpSample> vp_samples(int n) {
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  return vp::build_dataset(setting, n);
}

std::shared_ptr<ad::VpAdapter> vp_adapter(std::uint64_t seed = 1) {
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.lora_alpha = 4.0f;
  Rng rng(seed);
  return std::make_shared<ad::VpAdapter>(tiny_llm(seed, 112), cfg, rng);
}

}  // namespace

TEST_F(Decode, EngineBatchMatchesIndividualPredictions) {
  auto adapter = vp_adapter();
  auto engine = ad::api::Serve(adapter);
  const auto samples = vp_samples(6);
  for (const auto& s : samples) engine->submit(vp_request(s));
  EXPECT_EQ(engine->pending(), samples.size());

  const auto report = engine->run();
  EXPECT_EQ(engine->pending(), 0u);
  EXPECT_EQ(report.requests, samples.size());
  EXPECT_EQ(report.llm, samples.size());
  EXPECT_EQ(report.fallback, 0u);
  EXPECT_GE(report.p99_ms, report.p50_ms);

  ASSERT_EQ(engine->vp_responses().size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& resp = engine->vp_responses()[i];
    EXPECT_EQ(resp.meta.source, serve::Source::kLlm);
    const auto direct = adapter->predict(samples[i].history, samples[i].saliency, 4);
    ASSERT_EQ(resp.viewports.size(), direct.size());
    for (std::size_t j = 0; j < direct.size(); ++j) {
      // Bitwise: the batched request ran the identical serial computation.
      EXPECT_EQ(resp.viewports[j].roll, direct[j].roll);
      EXPECT_EQ(resp.viewports[j].pitch, direct[j].pitch);
      EXPECT_EQ(resp.viewports[j].yaw, direct[j].yaw);
    }
  }
}

TEST_F(Decode, EngineBatchBitwiseIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  const auto samples = vp_samples(5);
  auto run_at = [&](int threads) {
    nc::set_global_threads(threads);
    auto engine = ad::api::Serve(vp_adapter(3));
    for (const auto& s : samples) engine->submit(vp_request(s));
    engine->run();
    return engine->vp_responses();
  };
  const auto serial = run_at(1);
  const auto threaded = run_at(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].viewports.size(), threaded[i].viewports.size());
    for (std::size_t j = 0; j < serial[i].viewports.size(); ++j) {
      EXPECT_EQ(serial[i].viewports[j].roll, threaded[i].viewports[j].roll);
      EXPECT_EQ(serial[i].viewports[j].pitch, threaded[i].viewports[j].pitch);
      EXPECT_EQ(serial[i].viewports[j].yaw, threaded[i].viewports[j].yaw);
    }
  }
}

TEST_F(Decode, EngineRoutesMixedBatchAcrossAllThreeTasks) {
  auto engine = ad::api::Serve(std::make_shared<netllm::baselines::LinearRegressionVp>(),
                               std::make_shared<netllm::baselines::Bba>(),
                               std::make_shared<netllm::baselines::FifoScheduler>());
  const auto samples = vp_samples(2);
  engine->submit(vp_request(samples[0]));
  engine->submit(vp_request(samples[1]));

  netllm::abr::Observation obs;
  obs.past_throughput_mbps.assign(netllm::abr::Observation::kHistory, 3.0);
  obs.past_delay_s.assign(netllm::abr::Observation::kHistory, 0.1);
  obs.next_chunk_sizes_mbytes = {0.5, 1.0, 2.0, 4.0};
  obs.future_chunk_sizes_mbytes.assign(netllm::abr::Observation::kHorizon * 4, 1.0);
  obs.buffer_s = 10.0;
  obs.chunks_remaining = 10;
  obs.num_levels = 4;
  engine->submit(serve::AbrRequest{obs});

  netllm::cjs::SchedObservation sobs;
  sobs.node_features = Tensor::zeros({2, netllm::cjs::SchedObservation::kNodeFeatures});
  sobs.topology.num_nodes = 2;
  sobs.topology.children = {{}, {}};
  sobs.runnable_rows = {0, 1};
  sobs.job_of_row = {0, 1};
  sobs.job_arrival_of_row = {0.0, 1.0};
  sobs.idle_executors = 4;
  sobs.total_executors = 8;
  engine->submit(serve::CjsRequest{sobs});

  const auto report = engine->run();
  EXPECT_EQ(report.requests, 4u);
  EXPECT_EQ(report.llm, 4u);
  ASSERT_EQ(engine->abr_responses().size(), 1u);
  const int level = engine->abr_responses()[0].level;
  EXPECT_GE(level, 0);
  EXPECT_LT(level, 4);
  ASSERT_EQ(engine->cjs_responses().size(), 1u);
  EXPECT_EQ(engine->cjs_responses()[0].action.runnable_index, 0);  // FIFO: earliest arrival
}

TEST_F(Decode, MidBatchFaultDegradesOneRequestWithoutPoisoningTheRest) {
  ThreadGuard guard;
  nc::set_global_threads(1);  // deterministic order: jobs run in submit order
  nc::counters_reset();
  auto adapter = vp_adapter(7);
  auto engine = ad::api::Serve(adapter);
  const auto samples = vp_samples(4);
  for (const auto& s : samples) engine->submit(vp_request(s));

  // Fire exactly on the second request's guarded region.
  fault::arm("serve.batch", {.kind = fault::FaultKind::Throw, .after = 1, .times = 1});
  const auto report = engine->run();

  EXPECT_EQ(report.requests, 4u);
  EXPECT_EQ(report.llm, 3u);
  EXPECT_EQ(report.fallback, 1u);
  const auto counters = engine->counters();
  EXPECT_EQ(counters.fail_exception, 1);
  EXPECT_EQ(counters.llm_ok, 3);
  EXPECT_EQ(counters.fallback, 1);
  EXPECT_EQ(nc::counter_value("serve.vp.fallback"), 1);

  ASSERT_EQ(engine->vp_responses().size(), 4u);
  EXPECT_EQ(engine->vp_responses()[1].meta.source, serve::Source::kFallback);
  for (std::size_t i : {0u, 2u, 3u}) {
    const auto& resp = engine->vp_responses()[i];
    EXPECT_EQ(resp.meta.source, serve::Source::kLlm) << "request " << i;
    // Untouched requests still serve the exact LLM-path answer.
    const auto direct = adapter->predict(samples[i].history, samples[i].saliency, 4);
    ASSERT_EQ(resp.viewports.size(), direct.size());
    for (std::size_t j = 0; j < direct.size(); ++j) {
      EXPECT_EQ(resp.viewports[j].yaw, direct[j].yaw);
    }
  }
  // The degraded request still got a *valid* answer (the LR baseline).
  ASSERT_EQ(engine->vp_responses()[1].viewports.size(), 4u);
}

TEST_F(Decode, EngineBreakerOpensUnderSustainedFaults) {
  ThreadGuard guard;
  nc::set_global_threads(1);
  auto engine = ad::api::Serve(vp_adapter(11));
  const auto samples = vp_samples(1);

  fault::arm("serve.batch", {.kind = fault::FaultKind::Throw, .times = -1});
  // breaker_threshold=3 consecutive exceptions open the breaker; the
  // following requests are served by the fallback without touching the LLM.
  for (int i = 0; i < 5; ++i) engine->submit(vp_request(samples[0]));
  const auto report = engine->run();
  EXPECT_EQ(report.fallback, 5u);
  EXPECT_EQ(report.llm, 0u);
  const auto counters = engine->counters();
  EXPECT_EQ(counters.breaker_trips, 1);
  EXPECT_EQ(counters.fail_exception, 3);  // 3 probes, then the breaker served
}

TEST_F(Decode, EngineRejectsRequestsForMissingModels) {
  auto engine = ad::api::Serve(std::make_shared<netllm::baselines::LinearRegressionVp>());
  EXPECT_THROW(engine->submit(serve::AbrRequest{}), std::invalid_argument);
  EXPECT_THROW(engine->submit(serve::CjsRequest{}), std::invalid_argument);
  EXPECT_THROW(ad::api::Serve(nullptr), std::invalid_argument);
}
