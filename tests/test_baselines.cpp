// Tests for the baseline algorithms: rule-based behaviours (BBA thresholds,
// MPC planning, FIFO/Fair ordering, LR/Velocity extrapolation) and learning
// smoke tests for TRACK / GENET / Decima (does training move the needle in
// the right direction on small instances?).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/abr/genet.hpp"
#include "baselines/abr/rule_based.hpp"
#include "baselines/cjs/decima.hpp"
#include "baselines/cjs/rule_based.hpp"
#include "baselines/vp/rule_based.hpp"
#include "baselines/vp/track.hpp"
#include "core/stats.hpp"

namespace bl = netllm::baselines;
namespace abr = netllm::abr;
namespace cjs = netllm::cjs;
namespace vp = netllm::vp;
using netllm::core::Rng;

// ---------- VP rule-based ----------

TEST(LrVp, RecoversLinearMotion) {
  std::vector<vp::Viewport> history;
  for (int t = 0; t < 10; ++t) {
    history.push_back({0.0, 1.0 * t, 2.0 * t});
  }
  bl::LinearRegressionVp lr;
  auto pred = lr.predict(history, {}, 5);
  ASSERT_EQ(pred.size(), 5u);
  for (int k = 0; k < 5; ++k) {
    EXPECT_NEAR(pred[static_cast<std::size_t>(k)].pitch, 9.0 + (k + 1), 1e-6);
    EXPECT_NEAR(pred[static_cast<std::size_t>(k)].yaw, 18.0 + 2 * (k + 1), 1e-6);
  }
}

TEST(LrVp, ClampsToValidRange) {
  std::vector<vp::Viewport> history;
  for (int t = 0; t < 10; ++t) history.push_back({0.0, 0.0, 100.0 + 10.0 * t});
  bl::LinearRegressionVp lr;
  auto pred = lr.predict(history, {}, 10);
  for (const auto& v : pred) EXPECT_LE(v.yaw, 160.0);
}

TEST(VelocityVp, ExtrapolatesConstantVelocity) {
  std::vector<vp::Viewport> history;
  for (int t = 0; t < 10; ++t) history.push_back({0.0, 0.0, 3.0 * t});
  bl::VelocityVp vel;
  auto pred = vel.predict(history, {}, 3);
  EXPECT_NEAR(pred[0].yaw, 30.0, 1e-6);
  EXPECT_NEAR(pred[2].yaw, 36.0, 1e-6);
}

TEST(VelocityVp, StationaryHistoryStaysPut) {
  std::vector<vp::Viewport> history(10, {1.0, 2.0, 3.0});
  bl::VelocityVp vel;
  auto pred = vel.predict(history, {}, 4);
  for (const auto& v : pred) {
    EXPECT_NEAR(v.yaw, 3.0, 1e-9);
    EXPECT_NEAR(v.pitch, 2.0, 1e-9);
  }
}

// ---------- TRACK ----------

TEST(Track, TrainingReducesLossAndBeatsUntrained) {
  auto setting = vp::vp_default_train();
  setting.num_traces = 4;
  auto train_data = vp::build_dataset(setting, 120);
  auto test_setting = vp::vp_default_test();
  test_setting.num_traces = 2;
  auto test_data = vp::build_dataset(test_setting, 30);

  Rng rng(1);
  bl::TrackModel model({}, rng);
  auto before = netllm::core::mean(vp::evaluate_mae(model, test_data));
  auto stats = model.train(train_data, 250, 3e-3f, 7);
  EXPECT_LT(stats.final_loss, stats.initial_loss);
  auto after = netllm::core::mean(vp::evaluate_mae(model, test_data));
  EXPECT_LT(after, before);
}

TEST(Track, PredictsRequestedHorizonEvenBeyondTraining) {
  Rng rng(2);
  bl::TrackModel model({}, rng);
  std::vector<vp::Viewport> history(10, {0, 0, 0});
  auto img = netllm::tensor::Tensor::zeros({16, 16});
  EXPECT_EQ(model.predict(history, img, 20).size(), 20u);
  EXPECT_EQ(model.predict(history, img, 30).size(), 30u);  // longer pw (unseen setting)
}

// ---------- ABR rule-based ----------

namespace {

abr::Observation make_obs(double buffer_s, double tp_mbps, int last_level = 0) {
  abr::Observation obs;
  obs.past_throughput_mbps.assign(abr::Observation::kHistory, tp_mbps);
  obs.past_delay_s.assign(abr::Observation::kHistory, 1.0);
  obs.num_levels = 6;
  obs.buffer_s = buffer_s;
  obs.last_level = last_level;
  obs.chunk_duration_s = 4.0;
  obs.chunks_remaining = 20;
  obs.remaining_chunks_frac = 0.5;
  const double ladder_kbps[] = {300, 750, 1200, 1850, 2850, 4300};
  for (double kbps : ladder_kbps) {
    obs.next_chunk_sizes_mbytes.push_back(kbps * 1000 / 8 * 4.0 / 1e6);
  }
  for (int h = 0; h < abr::Observation::kHorizon; ++h) {
    for (double kbps : ladder_kbps) {
      obs.future_chunk_sizes_mbytes.push_back(kbps * 1000 / 8 * 4.0 / 1e6);
    }
  }
  return obs;
}

}  // namespace

TEST(Bba, MapsBufferToLadder) {
  bl::Bba bba(5.0, 10.0);
  EXPECT_EQ(bba.choose_level(make_obs(2.0, 3.0)), 0);    // below reservoir
  EXPECT_EQ(bba.choose_level(make_obs(20.0, 3.0)), 5);   // above cushion
  const int mid = bba.choose_level(make_obs(10.0, 3.0));
  EXPECT_GT(mid, 0);
  EXPECT_LT(mid, 5);
}

TEST(Mpc, PicksHighBitrateWhenBandwidthIsAmple) {
  bl::Mpc mpc;
  mpc.begin_session();
  EXPECT_GE(mpc.choose_level(make_obs(20.0, 20.0, 5)), 4);
}

TEST(Mpc, PicksLowBitrateWhenBandwidthIsScarce) {
  bl::Mpc mpc;
  mpc.begin_session();
  EXPECT_LE(mpc.choose_level(make_obs(1.0, 0.4, 0)), 1);
}

TEST(Mpc, AvoidsOscillationViaSmoothnessTerm) {
  // With bandwidth right between two rungs, a shallow buffer and a matching
  // last level, MPC should hold near the sustainable rung: the rebuffer term
  // rules out the top rungs and the smoothness term rules out dropping to 0.
  bl::Mpc mpc;
  mpc.begin_session();
  const int level = mpc.choose_level(make_obs(8.0, 1.9, 2));
  EXPECT_GE(level, 1);
  EXPECT_LE(level, 3);
}

TEST(Mpc, BeatsBbaOnDefaultSetting) {
  auto setting = abr::abr_default_test();
  setting.num_traces = 12;
  auto video = abr::video_for(setting);
  auto traces = abr::traces_for(setting);
  bl::Bba bba;
  bl::Mpc mpc;
  const double bba_qoe = netllm::core::mean(abr::evaluate_qoe(bba, video, traces));
  const double mpc_qoe = netllm::core::mean(abr::evaluate_qoe(mpc, video, traces));
  EXPECT_GT(mpc_qoe, bba_qoe);  // paper Fig. 10b ordering
}

// ---------- GENET ----------

TEST(Genet, FeatureVectorShapeAndNormalisation) {
  auto f = bl::GenetPolicy::features(make_obs(15.0, 3.0, 2));
  ASSERT_EQ(f.shape(), (netllm::tensor::Shape{1, bl::GenetPolicy::kFeatures}));
  for (float v : f.data()) EXPECT_LE(std::abs(v), 5.0f);
  // One-hot of last level occupies the tail.
  EXPECT_EQ(f.at(bl::GenetPolicy::kFeatures - 6 + 2), 1.0f);
}

TEST(Genet, TrainingImprovesQoe) {
  auto setting = abr::abr_default_train();
  setting.num_traces = 16;
  auto video = abr::video_for(setting);
  auto traces = abr::traces_for(setting);
  Rng rng(3);
  bl::GenetPolicy policy(rng);
  bl::GenetTrainConfig cfg;
  cfg.episodes = 120;
  cfg.seed = 5;
  auto stats = policy.train(video, traces, cfg);
  EXPECT_GT(stats.last_quarter_mean_qoe, stats.first_quarter_mean_qoe);
}

// ---------- CJS rule-based ----------

namespace {

cjs::WorkloadConfig small_workload(std::uint64_t seed) {
  cjs::WorkloadConfig cfg;
  cfg.num_job_requests = 30;
  cfg.executor_units_k = 10;
  cfg.scale = 1.0;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(Fifo, PrefersEarliestArrivedJob) {
  class Watcher final : public cjs::SchedPolicy {
   public:
    std::string name() const override { return "watch"; }
    cjs::SchedAction choose(const cjs::SchedObservation& obs) override {
      auto action = fifo.choose(obs);
      const auto row = static_cast<std::size_t>(
          obs.runnable_rows[static_cast<std::size_t>(action.runnable_index)]);
      for (int r : obs.runnable_rows) {
        EXPECT_LE(obs.job_arrival_of_row[row], obs.job_arrival_of_row[static_cast<std::size_t>(r)]);
      }
      return action;
    }
    bl::FifoScheduler fifo;
  };
  Watcher watcher;
  cjs::run_workload(small_workload(3), watcher);
}

TEST(FifoAndFair, CompleteAllJobs) {
  bl::FifoScheduler fifo;
  bl::FairScheduler fair;
  auto rf = cjs::run_workload(small_workload(5), fifo);
  auto ra = cjs::run_workload(small_workload(5), fair);
  EXPECT_EQ(rf.jct_s.size(), 30u);
  EXPECT_EQ(ra.jct_s.size(), 30u);
}

TEST(Fair, SpreadsExecutorsMoreEvenlyThanFifo) {
  // Under fair scheduling the maximum JCT should not blow up as much as the
  // mean: compare tail/median ratios loosely.
  bl::FifoScheduler fifo;
  bl::FairScheduler fair;
  auto rf = cjs::run_workload(small_workload(7), fifo);
  auto ra = cjs::run_workload(small_workload(7), fair);
  // Both finish; fair's per-job JCTs should be less extreme at the tail
  // relative to FIFO's (head-of-line blocking hits late arrivals).
  const double fifo_p90 = netllm::core::percentile(rf.jct_s, 90);
  const double fair_p90 = netllm::core::percentile(ra.jct_s, 90);
  EXPECT_GT(fifo_p90, 0.0);
  EXPECT_GT(fair_p90, 0.0);
}

// ---------- Decima ----------

TEST(Decima, ChoosesValidActionsAndIsDeterministicWhenGreedy) {
  Rng rng(11);
  bl::DecimaPolicy policy(rng);
  auto r1 = cjs::run_workload(small_workload(9), policy);
  auto r2 = cjs::run_workload(small_workload(9), policy);
  ASSERT_EQ(r1.jct_s.size(), r2.jct_s.size());
  for (std::size_t i = 0; i < r1.jct_s.size(); ++i) EXPECT_DOUBLE_EQ(r1.jct_s[i], r2.jct_s[i]);
}

TEST(Decima, TrainingImprovesMeanJct) {
  Rng rng(13);
  bl::DecimaPolicy policy(rng);
  bl::DecimaTrainConfig cfg;
  cfg.episodes = 60;
  cfg.train_scale = 0.06;
  cfg.seed = 17;
  auto stats = policy.train(cfg);
  // Allow some slack: REINFORCE is noisy at this scale, but the trend over
  // quarters should not regress badly.
  EXPECT_LT(stats.last_quarter_mean_jct, stats.first_quarter_mean_jct * 1.10);
}

TEST(Decima, StochasticModeExploresDifferentSchedules) {
  Rng rng(15);
  bl::DecimaPolicy policy(rng);
  policy.set_stochastic(true, 1);
  auto r1 = cjs::run_workload(small_workload(19), policy);
  policy.set_stochastic(true, 2);
  auto r2 = cjs::run_workload(small_workload(19), policy);
  double diff = 0.0;
  for (std::size_t i = 0; i < r1.jct_s.size(); ++i) diff += std::abs(r1.jct_s[i] - r2.jct_s[i]);
  EXPECT_GT(diff, 1e-6);
}
