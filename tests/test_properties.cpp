// Parameterized property suites (TEST_P sweeps): invariants that must hold
// across seeds, presets, shapes and configurations — the guard rails under
// the figure benches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>

#include "baselines/cjs/rule_based.hpp"
#include "core/rng.hpp"
#include "envs/abr/policy.hpp"
#include "envs/cjs/simulator.hpp"
#include "envs/vp/dataset.hpp"
#include "llm/minigpt.hpp"
#include "llm/tokenizer.hpp"
#include "nn/layers.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor.hpp"

namespace nt = netllm::tensor;
namespace nn = netllm::nn;
namespace abr = netllm::abr;
namespace cjs = netllm::cjs;
namespace vp = netllm::vp;
using netllm::core::Rng;

// ---------- tensor properties over random shapes ----------

class SoftmaxProperty : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SoftmaxProperty, RowsSumToOneAndMatchLogSoftmax) {
  const auto [rows, cols] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 131 + cols));
  auto x = nt::Tensor::randn({rows, cols}, rng, 2.0f);
  auto p = nt::softmax_rows(x);
  auto lp = nt::log_softmax_rows(x);
  for (int i = 0; i < rows; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) {
      const auto idx = i * cols + j;
      sum += p.at(idx);
      EXPECT_NEAR(std::log(std::max(p.at(idx), 1e-20f)), lp.at(idx), 1e-4f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxProperty,
                         ::testing::Values(std::pair{1, 2}, std::pair{3, 6}, std::pair{7, 13},
                                           std::pair{16, 64}));

class MatmulProperty : public ::testing::TestWithParam<int> {};

TEST_P(MatmulProperty, AssociativityWithIdentityAndTranspose) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  auto a = nt::Tensor::randn({n, n}, rng, 1.0f);
  // A * I == A
  auto eye = nt::Tensor::zeros({n, n});
  for (int i = 0; i < n; ++i) eye.mutable_data()[static_cast<std::size_t>(i * n + i)] = 1.0f;
  auto ai = nt::matmul(a, eye);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_NEAR(ai.at(i), a.at(i), 1e-5f);
  // (A^T)^T == A
  auto att = nt::transpose(nt::transpose(a));
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(att.at(i), a.at(i));
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulProperty, ::testing::Values(1, 3, 8, 17));

// ---------- tokenizer round trip over random alphabet strings ----------

class TokenizerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TokenizerProperty, EncodeDecodeRoundTrip) {
  netllm::llm::Tokenizer tok;
  Rng rng(GetParam());
  const std::string pool = "abcdefghijklmnopqrstuvwxyz0123456789 .,:;()[]{}<>=+-*/%_#\n";
  std::string text;
  const auto len = rng.randint(1, 80);
  for (std::int64_t i = 0; i < len; ++i) {
    text.push_back(pool[static_cast<std::size_t>(rng.randint(0, static_cast<std::int64_t>(pool.size()) - 1))]);
  }
  EXPECT_EQ(tok.decode(tok.encode(text)), text);
}

// Over *arbitrary* bytes (uppercase, punctuation outside the alphabet),
// decode∘encode equals the fold: uppercase lowercased, unknown chars -> ' '.
TEST_P(TokenizerProperty, EncodeDecodeEqualsFold) {
  netllm::llm::Tokenizer tok;
  Rng rng(GetParam() + 100);
  std::string text;
  const auto len = rng.randint(1, 120);
  for (std::int64_t i = 0; i < len; ++i) {
    text.push_back(static_cast<char>(rng.randint(1, 126)));
  }
  std::string folded;
  for (char c : text) {
    const char f = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    folded.push_back(tok.char_to_id(f).has_value() ? f : ' ');
  }
  EXPECT_EQ(tok.decode(tok.encode(text)), folded);
}

// Regression for the PR 2 char_to_id case-folding fix: the single-char
// lookup must agree with encode() on uppercase input.
TEST(TokenizerRegression, CharToIdFoldsUppercaseLikeEncode) {
  netllm::llm::Tokenizer tok;
  for (char c = 'A'; c <= 'Z'; ++c) {
    const auto upper = tok.char_to_id(c);
    const auto lower = tok.char_to_id(static_cast<char>(c - 'A' + 'a'));
    ASSERT_TRUE(upper.has_value()) << c;
    ASSERT_TRUE(lower.has_value()) << c;
    EXPECT_EQ(*upper, *lower) << c;
  }
  EXPECT_EQ(tok.encode("ABC xyz"), tok.encode("abc xyz"));
  EXPECT_EQ(tok.decode(tok.encode("MiXeD CaSe 42")), "mixed case 42");
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerProperty, ::testing::Range<std::uint64_t>(1, 9));

// ---------- LoRA preserves the base function at init, any rank ----------

class LoraProperty : public ::testing::TestWithParam<int> {};

TEST_P(LoraProperty, InitialDeltaIsZero) {
  const auto rank = static_cast<std::int64_t>(GetParam());
  Rng rng(static_cast<std::uint64_t>(rank) + 5);
  auto base = std::make_shared<nn::Linear>(12, 7, rng);
  nn::LoRALinear lora(base, rank, 2.0f * rank, rng);
  auto x = nt::Tensor::randn({4, 12}, rng, 1.0f);
  auto yb = base->forward(x);
  auto yl = lora.forward(x);
  for (std::int64_t i = 0; i < yb.numel(); ++i) EXPECT_NEAR(yb.at(i), yl.at(i), 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(Ranks, LoraProperty, ::testing::Values(1, 2, 4, 8, 16));

// ---------- MiniGPT causality across sequence lengths ----------

class CausalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(CausalityProperty, PrefixLogitsInvariantToSuffix) {
  const int t = GetParam();
  netllm::llm::MiniGptConfig cfg;
  cfg.vocab = 40;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 64;
  Rng rng(9);
  netllm::llm::MiniGpt model(cfg, rng);
  Rng data_rng(static_cast<std::uint64_t>(t));
  std::vector<int> ids(static_cast<std::size_t>(t));
  for (auto& id : ids) id = static_cast<int>(data_rng.randint(3, 39));
  auto full = model.forward_tokens(ids);
  std::vector<int> prefix(ids.begin(), ids.end() - 1);
  auto part = model.forward_tokens(prefix);
  for (std::int64_t i = 0; i < part.numel(); ++i) EXPECT_NEAR(part.at(i), full.at(i), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CausalityProperty, ::testing::Values(2, 5, 16, 48));

// ---------- ABR simulator invariants across presets and seeds ----------

struct AbrCase {
  abr::TracePreset preset;
  std::uint64_t seed;
  int level;
};

class AbrSimProperty : public ::testing::TestWithParam<AbrCase> {};

TEST_P(AbrSimProperty, SessionInvariants) {
  const auto param = GetParam();
  const auto video = abr::VideoModel::envivio(param.seed);
  const auto traces = abr::generate_traces(param.preset, 1, param.seed);
  abr::SimConfig cfg;
  abr::StreamingSession session(video, traces[0], cfg);
  int chunks = 0;
  double total_rebuffer = 0.0;
  while (!session.done()) {
    const auto obs = session.observe();
    EXPECT_GE(obs.buffer_s, 0.0);
    EXPECT_LE(obs.buffer_s, cfg.buffer_cap_s + 1e-9);
    EXPECT_EQ(static_cast<int>(obs.future_chunk_sizes_mbytes.size()),
              abr::Observation::kHorizon * obs.num_levels);
    const auto r = session.step(param.level);
    EXPECT_GT(r.delay_s, 0.0);
    EXPECT_GE(r.rebuffer_s, 0.0);
    EXPECT_GT(r.throughput_mbps, 0.0);
    total_rebuffer += r.rebuffer_s;
    ++chunks;
  }
  EXPECT_EQ(chunks, video.num_chunks());
  // QoE ledger consistency: mean QoE == (bitrate - 4.3 rebuf - change)/C.
  const double expected =
      (session.total_bitrate_mbps() - 4.3 * session.total_rebuffer_s() -
       session.total_smoothness_mbps()) /
      session.chunks_served();
  EXPECT_NEAR(session.mean_qoe(), expected, 1e-9);
  EXPECT_NEAR(session.total_rebuffer_s(), total_rebuffer, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    PresetsSeedsLevels, AbrSimProperty,
    ::testing::Values(AbrCase{abr::TracePreset::kFcc, 1, 0},
                      AbrCase{abr::TracePreset::kFcc, 2, 5},
                      AbrCase{abr::TracePreset::kSynth, 3, 3},
                      AbrCase{abr::TracePreset::kBroadband, 4, 5},
                      AbrCase{abr::TracePreset::kCellular, 5, 2}));

// ---------- CJS conservation laws across seeds and policies ----------

class CjsConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CjsConservation, RewardIntegralEqualsTotalJctAndAllJobsFinish) {
  cjs::WorkloadConfig cfg;
  cfg.num_job_requests = 24;
  cfg.executor_units_k = 8;
  cfg.scale = 1.0;
  cfg.seed = GetParam();
  netllm::baselines::FairScheduler fair;
  const auto result = cjs::run_workload(cfg, fair);
  ASSERT_EQ(result.jct_s.size(), 24u);
  double sum_jct = 0.0;
  for (double j : result.jct_s) {
    EXPECT_GT(j, 0.0);
    sum_jct += j;
  }
  EXPECT_NEAR(-result.total_reward, sum_jct, sum_jct * 0.01 + 1e-6);
  // Makespan is at least the longest critical path of any single job.
  EXPECT_GT(result.makespan_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CjsConservation, ::testing::Range<std::uint64_t>(1, 9));

// ---------- VP generator bounds across datasets and seeds ----------

struct VpCase {
  vp::VpDataset dataset;
  std::uint64_t seed;
};

class VpGenProperty : public ::testing::TestWithParam<VpCase> {};

TEST_P(VpGenProperty, AnglesBoundedAndSaliencyNormalised) {
  const auto param = GetParam();
  const auto traces = vp::generate_traces(param.dataset, 1, param.seed);
  const auto& trace = traces[0];
  for (const auto& s : trace.samples) {
    EXPECT_LE(std::abs(s.roll), 20.0);
    EXPECT_LE(std::abs(s.pitch), 60.0);
    EXPECT_LE(std::abs(s.yaw), 160.0);
  }
  const auto img = vp::render_saliency(trace, static_cast<int>(trace.samples.size() / 2),
                                       param.seed);
  float mx = 0.0f;
  for (float v : img.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
    mx = std::max(mx, v);
  }
  EXPECT_GT(mx, 0.3f);  // the hotspot is visible
}

INSTANTIATE_TEST_SUITE_P(DatasetsSeeds, VpGenProperty,
                         ::testing::Values(VpCase{vp::VpDataset::kJin2022, 1},
                                           VpCase{vp::VpDataset::kJin2022, 7},
                                           VpCase{vp::VpDataset::kWu2017, 1},
                                           VpCase{vp::VpDataset::kWu2017, 7}));

// ---------- attention: non-causal permutation covariance smoke ----------

class AttentionProperty : public ::testing::TestWithParam<int> {};

TEST_P(AttentionProperty, OutputFiniteAndShaped) {
  const int t = GetParam();
  Rng rng(3);
  nn::MultiHeadAttention mha(16, 4, /*causal=*/true, rng);
  auto x = nt::Tensor::randn({t, 16}, rng, 1.0f);
  auto y = mha.forward(x);
  ASSERT_EQ(y.shape(), (nt::Shape{t, 16}));
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

INSTANTIATE_TEST_SUITE_P(Lengths, AttentionProperty, ::testing::Values(1, 2, 33, 112));

// ---------- attention backward: finite-difference gradient checks ----------
// The attention backward was previously covered only transitively (test_nn
// trains through it); these pin every parameter's analytic gradient against
// central differences, for the raw MHA and for a full pre-LN block.

namespace {

/// Central-difference check over every element of every input (the idiom
/// from test_autograd, replicated here for the composite-module suites).
void fd_check_gradients(const std::vector<nt::Tensor>& inputs,
                        const std::function<nt::Tensor()>& loss_fn, float eps = 1e-3f,
                        float tol = 2e-2f) {
  for (const auto& in : inputs) in.zero_grad();
  auto loss = loss_fn();
  ASSERT_EQ(loss.numel(), 1);
  loss.backward();
  std::vector<std::vector<float>> analytic;
  for (const auto& in : inputs) {
    analytic.emplace_back(in.grad().begin(), in.grad().end());
  }
  for (std::size_t k = 0; k < inputs.size(); ++k) {
    auto data = const_cast<nt::Tensor&>(inputs[k]).mutable_data();
    for (std::size_t i = 0; i < data.size(); ++i) {
      const float orig = data[i];
      data[i] = orig + eps;
      const float up = loss_fn().item();
      data[i] = orig - eps;
      const float down = loss_fn().item();
      data[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float a = analytic[k][i];
      const float denom = std::max({std::abs(numeric), std::abs(a), 1.0f});
      EXPECT_NEAR(a / denom, numeric / denom, tol)
          << "input " << k << " element " << i << " analytic=" << a << " numeric=" << numeric;
    }
  }
}

}  // namespace

class AttentionGradProperty : public ::testing::TestWithParam<bool> {};

TEST_P(AttentionGradProperty, MultiHeadAttentionGradientsMatchFiniteDifferences) {
  const bool causal = GetParam();
  Rng rng(17);
  nn::MultiHeadAttention mha(8, 2, causal, rng);
  auto x = nt::Tensor::randn({3, 8}, rng, 0.7f, /*requires_grad=*/true);
  auto inputs = mha.trainable_parameters();
  inputs.push_back(x);
  fd_check_gradients(inputs, [&] {
    auto y = mha.forward(x);
    return nt::mean_all(nt::mul(y, y));
  });
}

INSTANTIATE_TEST_SUITE_P(Masks, AttentionGradProperty, ::testing::Values(false, true));

TEST(TransformerBlockGradProperty, BlockGradientsMatchFiniteDifferences) {
  Rng rng(29);
  nn::TransformerBlock block(8, 2, 12, /*causal=*/true, rng);
  auto x = nt::Tensor::randn({3, 8}, rng, 0.7f, /*requires_grad=*/true);
  auto inputs = block.trainable_parameters();
  inputs.push_back(x);
  fd_check_gradients(inputs, [&] {
    auto y = block.forward(x);
    return nt::mean_all(nt::mul(y, y));
  });
}

// ---------- block-quantization properties (DESIGN.md §15) ----------

namespace {
namespace nq = netllm::tensor::quant;
}  // namespace

class QuantExactnessProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantExactnessProperty, ZeroConstantAndMaxMagnitudeBlocksAreExactForQ8) {
  Rng rng(GetParam());
  const std::int64_t n = nq::kBlock;
  // All-zero block: scale 0, every code 0, exact reconstruction.
  std::vector<float> zero(static_cast<std::size_t>(n), 0.0f);
  auto q = nq::quantize(nq::Dtype::kQ8_0, zero.data(), 1, n);
  EXPECT_EQ(q.scales[0], 0.0f);
  auto back = nq::dequantize(q);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(back.at(i), 0.0f);

  // Constant block: the scale is value/-128 (an exact exponent shift), every
  // element maps to code -128 and reconstructs bit-exactly.
  const float c = static_cast<float>(rng.gaussian(0.0, 3.0));
  std::vector<float> constant(static_cast<std::size_t>(n), c);
  q = nq::quantize(nq::Dtype::kQ8_0, constant.data(), 1, n);
  back = nq::dequantize(q);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(back.at(i), c) << "i=" << i;

  // Random block: whatever the mix, the max-magnitude element itself is
  // always reconstructed bit-exactly (it sits on the -128 end of the range).
  std::vector<float> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<float>(rng.gaussian(0.0, 1.0));
  std::int64_t arg = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    if (std::fabs(x[static_cast<std::size_t>(i)]) >
        std::fabs(x[static_cast<std::size_t>(arg)])) {
      arg = i;
    }
  }
  q = nq::quantize(nq::Dtype::kQ8_0, x.data(), 1, n);
  back = nq::dequantize(q);
  EXPECT_EQ(back.at(arg), x[static_cast<std::size_t>(arg)]);
}

TEST_P(QuantExactnessProperty, RoundTripErrorBoundedByPerBlockScale) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  for (auto d : {nq::Dtype::kQ8_0, nq::Dtype::kQ4_0}) {
    const std::int64_t rows = 3, cols = 50;  // tail block exercises padding
    std::vector<float> x(static_cast<std::size_t>(rows * cols));
    for (auto& v : x) v = static_cast<float>(rng.gaussian(0.0, 2.0));
    const auto q = nq::quantize(d, x.data(), rows, cols);
    const auto back = nq::dequantize(q);
    const auto bpr = nq::blocks_per_row(cols);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (std::int64_t c = 0; c < cols; ++c) {
        const auto i = r * cols + c;
        const float scale = q.scales[static_cast<std::size_t>(r * bpr + c / nq::kBlock)];
        EXPECT_LE(std::fabs(back.at(i) - x[static_cast<std::size_t>(i)]),
                  std::fabs(scale))
            << nq::dtype_name(d) << " r=" << r << " c=" << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantExactnessProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 0xdecafu, 0xfeedfaceu,
                                           31337u, 271828u, 3141592u, 0xabcdefu));
