// Durable-session tests: the kill/resume bitwise-equivalence guarantee for
// all three adapt() loops, graceful SIGINT/SIGTERM drain, torn-checkpoint
// fallback, retention GC, and fingerprint-mismatch rejection.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/abr/rule_based.hpp"
#include "baselines/cjs/rule_based.hpp"
#include "core/fault.hpp"
#include "core/signal.hpp"
#include "core/threadpool.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"

namespace ad = netllm::adapt;
namespace abr = netllm::abr;
namespace cjs = netllm::cjs;
namespace vp = netllm::vp;
namespace fault = netllm::core::fault;
namespace fs = std::filesystem;
using netllm::core::Rng;

namespace {

std::shared_ptr<netllm::llm::MiniGpt> tiny_llm(std::uint64_t seed = 7) {
  netllm::llm::MiniGptConfig cfg;
  cfg.vocab = netllm::llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.max_seq = 112;
  Rng rng(seed);
  return std::make_shared<netllm::llm::MiniGpt>(cfg, rng);
}

fs::path session_dir(const std::string& name) {
  const auto p = fs::temp_directory_path() / ("netllm_sess_" + name);
  fs::remove_all(p);
  return p;
}

using ParamImage = std::vector<std::vector<float>>;

ParamImage snap(const netllm::nn::Module& m) {
  ParamImage out;
  for (const auto& [name, t] : m.named_parameters()) {
    auto d = t.data();
    out.emplace_back(d.begin(), d.end());
  }
  return out;
}

void expect_bitwise_equal(const ParamImage& a, const ParamImage& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "param " << i;
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(), a[i].size() * sizeof(float)), 0)
        << "param " << i << " differs";
  }
}

void arm_kill_after(int hits) {
  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::Throw;
  plan.after = hits;  // the (hits+1)-th training-step hit throws mid-step
  fault::arm("adapter.step", plan);
}

// ---- task fixtures: identical construction on every call, so a resumed
// adapter starts from the same initialisation as the killed one ----

std::vector<vp::VpSample> vp_data() {
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  return vp::build_dataset(setting, 8);
}

std::unique_ptr<ad::VpAdapter> make_vp() {
  Rng rng(11);
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  return std::make_unique<ad::VpAdapter>(tiny_llm(), cfg, rng);
}

std::vector<ad::AbrTrajectory> abr_pool() {
  auto setting = abr::abr_default_train();
  setting.num_traces = 2;
  netllm::baselines::Bba bba;
  return ad::api::RL_Collect(bba, setting, 1, 0.1, 3);
}

std::unique_ptr<ad::AbrAdapter> make_abr() {
  Rng rng(12);
  ad::AbrAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.context_window = 4;
  return std::make_unique<ad::AbrAdapter>(tiny_llm(), cfg, rng);
}

std::vector<ad::CjsTrajectory> cjs_pool() {
  cjs::WorkloadConfig base;
  base.num_job_requests = 6;
  base.executor_units_k = 4;
  base.scale = 1.0;
  base.seed = 5;
  netllm::baselines::FairScheduler fair;
  return ad::api::RL_Collect(fair, base, 2, 7);
}

std::unique_ptr<ad::CjsAdapter> make_cjs() {
  Rng rng(13);
  ad::CjsAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.context_window = 4;
  return std::make_unique<ad::CjsAdapter>(tiny_llm(), cfg, rng);
}

constexpr int kSteps = 16;
constexpr float kLr = 1e-3f;
constexpr std::uint64_t kSeed = 21;

class SessionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::disarm_all();
    netllm::core::clear_stop();
    netllm::core::set_global_threads(1);
  }
};

/// adapt(2N) ≡ adapt(N) -> kill -> resume -> adapt(N): run the uninterrupted
/// reference, then a durable run killed mid-step via the "adapter.step"
/// fault site, then a fresh adapter resuming the same directory. Final
/// weights must match the reference bitwise.
template <typename MakeFn, typename PoolT>
void kill_resume_roundtrip(MakeFn make, const PoolT& pool, const std::string& tag,
                           int kill_after_hits, int threads) {
  netllm::core::set_global_threads(threads);
  auto ref_model = make();
  ref_model->adapt(pool, kSteps, kLr, kSeed);
  const auto reference = snap(*ref_model);

  ad::SessionOptions sess;
  sess.dir = session_dir(tag + "_t" + std::to_string(threads)).string();
  sess.checkpoint_every = 3;

  {
    auto victim = make();
    arm_kill_after(kill_after_hits);
    EXPECT_THROW(victim->adapt(pool, kSteps, kLr, kSeed, sess), fault::FaultInjected);
    fault::disarm_all();
  }
  ASSERT_TRUE(ad::TrainSession::latest_step(sess.dir).has_value());

  auto resumed = make();
  const auto stats = resumed->adapt(pool, kSteps, kLr, kSeed, sess);
  EXPECT_GT(stats.start_step, 0);
  EXPECT_FALSE(stats.interrupted);
  expect_bitwise_equal(snap(*resumed), reference);
}

}  // namespace

TEST_F(SessionTest, VpKillResumeBitwiseEquivalentSerial) {
  kill_resume_roundtrip(make_vp, vp_data(), "vp", 10, /*threads=*/1);
}

TEST_F(SessionTest, VpKillResumeBitwiseEquivalentThreaded) {
  kill_resume_roundtrip(make_vp, vp_data(), "vp", 10, /*threads=*/8);
}

TEST_F(SessionTest, AbrKillResumeBitwiseEquivalentSerial) {
  // ABR hits "adapter.step" kBatch=3 times per step, so 13 hits kills
  // mid-batch in step 4 — after the step-3 checkpoint.
  kill_resume_roundtrip(make_abr, abr_pool(), "abr", 13, /*threads=*/1);
}

TEST_F(SessionTest, AbrKillResumeBitwiseEquivalentThreaded) {
  kill_resume_roundtrip(make_abr, abr_pool(), "abr", 13, /*threads=*/8);
}

TEST_F(SessionTest, CjsKillResumeBitwiseEquivalentSerial) {
  kill_resume_roundtrip(make_cjs, cjs_pool(), "cjs", 10, /*threads=*/1);
}

TEST_F(SessionTest, CjsKillResumeBitwiseEquivalentThreaded) {
  kill_resume_roundtrip(make_cjs, cjs_pool(), "cjs", 10, /*threads=*/8);
}

TEST_F(SessionTest, StopRequestDrainsAndResumeMatchesReference) {
  const auto data = vp_data();
  auto ref_model = make_vp();
  ref_model->adapt(data, kSteps, kLr, kSeed);
  const auto reference = snap(*ref_model);

  ad::SessionOptions sess;
  sess.dir = session_dir("vp_drain").string();
  sess.checkpoint_every = 100;  // only the drain checkpoint is written

  netllm::core::request_stop();  // pending stop: drain after the first step
  auto victim = make_vp();
  const auto st = victim->adapt(data, kSteps, kLr, kSeed, sess);
  EXPECT_TRUE(st.interrupted);
  EXPECT_EQ(st.checkpoints, 1);
  ASSERT_EQ(ad::TrainSession::latest_step(sess.dir), std::optional<int>(1));
  netllm::core::clear_stop();

  auto resumed = make_vp();
  const auto rs = resumed->adapt(data, kSteps, kLr, kSeed, sess);
  EXPECT_EQ(rs.start_step, 1);
  expect_bitwise_equal(snap(*resumed), reference);
}

TEST_F(SessionTest, SigtermMidAdaptProducesLoadableCheckpointAndCleanExit) {
  const auto data = vp_data();
  ad::SessionOptions sess;
  sess.dir = session_dir("vp_sigterm").string();
  sess.checkpoint_every = 1000000;  // force the drain path to write it

  auto model = make_vp();
  ad::AdaptStats st;
  std::thread trainer(
      [&] { st = model->adapt(data, 1000000, kLr, kSeed, sess); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::raise(SIGTERM);  // handler installed by the session inside adapt()
  trainer.join();

  EXPECT_TRUE(st.interrupted);
  EXPECT_GE(st.checkpoints, 1);
  const auto latest = ad::TrainSession::latest_step(sess.dir);
  ASSERT_TRUE(latest.has_value());
  EXPECT_GT(*latest, 0);
  // The drain checkpoint is a valid v3 session record end to end.
  for (const auto& entry : fs::directory_iterator(sess.dir)) {
    netllm::tensor::SessionSections sections;
    const auto report =
        netllm::tensor::load_params_report(entry.path().string(), {}, &sections);
    EXPECT_EQ(report.version, 3u);
    EXPECT_TRUE(report.has_session());
  }
}

TEST_F(SessionTest, DrainCheckpointRetriesThroughTruncatedWrite) {
  const auto data = vp_data();
  auto ref_model = make_vp();
  ref_model->adapt(data, kSteps, kLr, kSeed);
  const auto reference = snap(*ref_model);

  ad::SessionOptions sess;
  sess.dir = session_dir("vp_drain_retry").string();
  sess.checkpoint_every = 100;

  netllm::core::request_stop();
  fault::FaultPlan torn;
  torn.kind = fault::FaultKind::TruncateIo;
  torn.truncate_to = 8;
  torn.times = 1;  // first drain attempt tears; the retry goes through
  fault::arm("serialize.write", torn);
  auto victim = make_vp();
  const auto st = victim->adapt(data, kSteps, kLr, kSeed, sess);
  fault::disarm_all();
  EXPECT_TRUE(st.interrupted);
  netllm::core::clear_stop();

  auto resumed = make_vp();
  resumed->adapt(data, kSteps, kLr, kSeed, sess);
  expect_bitwise_equal(snap(*resumed), reference);
}

TEST_F(SessionTest, TornNewestCheckpointFallsBackToPrevious) {
  const auto data = vp_data();
  auto ref_model = make_vp();
  ref_model->adapt(data, kSteps, kLr, kSeed);
  const auto reference = snap(*ref_model);

  ad::SessionOptions sess;
  sess.dir = session_dir("vp_torn").string();
  sess.checkpoint_every = 3;
  sess.keep_last = 8;  // keep everything: the test needs an older fallback

  {
    auto victim = make_vp();
    arm_kill_after(10);
    EXPECT_THROW(victim->adapt(data, kSteps, kLr, kSeed, sess), fault::FaultInjected);
    fault::disarm_all();
  }
  // Externally damage the newest checkpoint (e.g. a disk fault after the
  // atomic rename): resume must skip it and replay from the previous one.
  std::vector<fs::path> files;
  for (const auto& e : fs::directory_iterator(sess.dir)) files.push_back(e.path());
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 2u);
  {
    std::ifstream is(files.back(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
    std::ofstream os(files.back(), std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  auto resumed = make_vp();
  const auto stats = resumed->adapt(data, kSteps, kLr, kSeed, sess);
  EXPECT_GT(stats.start_step, 0);
  expect_bitwise_equal(snap(*resumed), reference);
}

TEST_F(SessionTest, RetentionKeepsNewestKAndNeverTheLatest) {
  const auto data = vp_data();
  ad::SessionOptions sess;
  sess.dir = session_dir("vp_gc").string();
  sess.checkpoint_every = 2;
  sess.keep_last = 3;

  auto model = make_vp();
  const auto st = model->adapt(data, kSteps, kLr, kSeed, sess);
  EXPECT_GT(st.checkpoints, 3);  // more were written than survive GC

  std::size_t count = 0;
  for (const auto& e : fs::directory_iterator(sess.dir)) {
    (void)e;
    ++count;
  }
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(ad::TrainSession::latest_step(sess.dir), std::optional<int>(kSteps));
}

TEST_F(SessionTest, FinishedRunResumesAsAlreadyDone) {
  const auto data = vp_data();
  ad::SessionOptions sess;
  sess.dir = session_dir("vp_done").string();
  sess.checkpoint_every = 5;

  auto model = make_vp();
  model->adapt(data, kSteps, kLr, kSeed, sess);
  const auto finished = snap(*model);

  auto again = make_vp();
  const auto st = again->adapt(data, kSteps, kLr, kSeed, sess);
  EXPECT_EQ(st.start_step, kSteps);  // no steps replayed
  EXPECT_EQ(st.checkpoints, 0);
  expect_bitwise_equal(snap(*again), finished);
}

TEST_F(SessionTest, FingerprintMismatchIsRejectedByName) {
  const auto data = vp_data();
  ad::SessionOptions sess;
  sess.dir = session_dir("vp_mismatch").string();
  sess.checkpoint_every = 4;

  auto model = make_vp();
  model->adapt(data, kSteps, kLr, kSeed, sess);

  auto other = make_vp();
  EXPECT_THROW(other->adapt(data, kSteps, kLr, kSeed + 1, sess), ad::SessionMismatch);
  EXPECT_THROW(other->adapt(data, kSteps + 4, kLr, kSeed, sess), ad::SessionMismatch);
  EXPECT_THROW(other->adapt(data, kSteps, 2e-3f, kSeed, sess), ad::SessionMismatch);
}

TEST_F(SessionTest, PeriodicCheckpointFailuresNeverAffectTraining) {
  const auto data = vp_data();
  auto ref_model = make_vp();
  ref_model->adapt(data, kSteps, kLr, kSeed);
  const auto reference = snap(*ref_model);

  ad::SessionOptions sess;
  sess.dir = session_dir("vp_ckpt_fail").string();
  sess.checkpoint_every = 3;

  fault::FaultPlan plan;
  plan.kind = fault::FaultKind::Throw;
  plan.times = -1;  // every checkpoint write fails
  fault::arm("session.checkpoint", plan);
  auto model = make_vp();
  const auto st = model->adapt(data, kSteps, kLr, kSeed, sess);
  fault::disarm_all();

  // Training ran to completion with identical weights; only durability lost.
  EXPECT_EQ(st.checkpoints, 0);
  EXPECT_FALSE(st.interrupted);
  expect_bitwise_equal(snap(*model), reference);
  EXPECT_FALSE(ad::TrainSession::latest_step(sess.dir).has_value());
}

TEST_F(SessionTest, ResumeApiRequiresExistingCheckpoint) {
  const auto data = vp_data();
  ad::api::AdaptOptions opts;
  opts.steps = kSteps;
  opts.seed = kSeed;
  Rng rng(11);
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  EXPECT_THROW(ad::api::Resume(tiny_llm(), data, cfg, opts, rng), std::invalid_argument);
  opts.session_dir = session_dir("vp_api_missing").string();
  EXPECT_THROW(ad::api::Resume(tiny_llm(), data, cfg, opts, rng), std::invalid_argument);
}
