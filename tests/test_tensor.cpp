// Unit tests for tensor forward semantics, optimizers and serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/rng.hpp"
#include "tensor/optim.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace nt = netllm::tensor;
using netllm::core::Rng;

TEST(Tensor, ConstructionAndShape) {
  auto t = nt::Tensor::zeros({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (float v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FromRejectsSizeMismatch) {
  EXPECT_THROW(nt::Tensor::from({1, 2, 3}, {2, 2}), std::invalid_argument);
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW(nt::Tensor::zeros({2}).item(), std::invalid_argument);
  EXPECT_EQ(nt::Tensor::scalar(5.0f).item(), 5.0f);
}

TEST(Tensor, ElementwiseForward) {
  auto a = nt::Tensor::from({1, 2, 3}, {3});
  auto b = nt::Tensor::from({4, 5, 6}, {3});
  auto s = nt::add(a, b);
  auto d = nt::sub(a, b);
  auto m = nt::mul(a, b);
  EXPECT_EQ(s.at(1), 7.0f);
  EXPECT_EQ(d.at(2), -3.0f);
  EXPECT_EQ(m.at(0), 4.0f);
  EXPECT_EQ(nt::scale(a, 2.0f).at(2), 6.0f);
  EXPECT_EQ(nt::add_scalar(a, 1.0f).at(0), 2.0f);
  EXPECT_EQ(nt::neg(a).at(0), -1.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  auto a = nt::Tensor::zeros({2});
  auto b = nt::Tensor::zeros({3});
  EXPECT_THROW(nt::add(a, b), std::invalid_argument);
  EXPECT_THROW(nt::mul(a, b), std::invalid_argument);
}

TEST(Tensor, MatmulForward) {
  auto a = nt::Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  auto b = nt::Tensor::from({7, 8, 9, 10, 11, 12}, {3, 2});
  auto c = nt::matmul(a, b);
  ASSERT_EQ(c.shape(), (nt::Shape{2, 2}));
  EXPECT_EQ(c.at(0), 58.0f);
  EXPECT_EQ(c.at(1), 64.0f);
  EXPECT_EQ(c.at(2), 139.0f);
  EXPECT_EQ(c.at(3), 154.0f);
}

TEST(Tensor, TransposeForward) {
  auto a = nt::Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  auto t = nt::transpose(a);
  ASSERT_EQ(t.shape(), (nt::Shape{3, 2}));
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(1), 4.0f);
  EXPECT_EQ(t.at(4), 3.0f);
}

TEST(Tensor, AddBiasBroadcastsOverRows) {
  auto a = nt::Tensor::from({1, 2, 3, 4}, {2, 2});
  auto b = nt::Tensor::from({10, 20}, {2});
  auto c = nt::add_bias(a, b);
  EXPECT_EQ(c.at(0), 11.0f);
  EXPECT_EQ(c.at(3), 24.0f);
}

TEST(Tensor, SoftmaxRowsSumToOne) {
  auto a = nt::Tensor::from({1, 2, 3, -1, 0, 1}, {2, 3});
  auto s = nt::softmax_rows(a);
  for (int i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 3; ++j) sum += s.at(i * 3 + j);
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
  }
  EXPECT_GT(s.at(2), s.at(1));
}

TEST(Tensor, SoftmaxNumericallyStableForLargeLogits) {
  auto a = nt::Tensor::from({1000, 1001, 1002}, {1, 3});
  auto s = nt::softmax_rows(a);
  float sum = 0.0f;
  for (int j = 0; j < 3; ++j) {
    EXPECT_FALSE(std::isnan(s.at(j)));
    sum += s.at(j);
  }
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
}

TEST(Tensor, CausalMaskedSoftmaxZeroesFuture) {
  auto a = nt::Tensor::from({0, 9, 9, 1, 1, 9, 1, 1, 1}, {3, 3});
  auto s = nt::causal_masked_softmax(a);
  EXPECT_NEAR(s.at(0), 1.0f, 1e-6f);
  EXPECT_EQ(s.at(1), 0.0f);
  EXPECT_EQ(s.at(2), 0.0f);
  EXPECT_NEAR(s.at(3) + s.at(4), 1.0f, 1e-6f);
  EXPECT_EQ(s.at(5), 0.0f);
  EXPECT_NEAR(s.at(6) + s.at(7) + s.at(8), 1.0f, 1e-6f);
}

TEST(Tensor, LayerNormRowsNormalises) {
  auto a = nt::Tensor::from({1, 2, 3, 4, 10, 20, 30, 40}, {2, 4});
  auto gamma = nt::Tensor::full({4}, 1.0f);
  auto beta = nt::Tensor::zeros({4});
  auto y = nt::layer_norm_rows(a, gamma, beta);
  for (int i = 0; i < 2; ++i) {
    float mu = 0.0f, var = 0.0f;
    for (int j = 0; j < 4; ++j) mu += y.at(i * 4 + j);
    mu /= 4.0f;
    for (int j = 0; j < 4; ++j) var += (y.at(i * 4 + j) - mu) * (y.at(i * 4 + j) - mu);
    EXPECT_NEAR(mu, 0.0f, 1e-5f);
    EXPECT_NEAR(var / 4.0f, 1.0f, 1e-3f);
  }
}

TEST(Tensor, EmbeddingGathersRows) {
  auto w = nt::Tensor::from({1, 2, 3, 4, 5, 6}, {3, 2});
  const int ids[] = {2, 0, 2};
  auto e = nt::embedding(w, ids);
  ASSERT_EQ(e.shape(), (nt::Shape{3, 2}));
  EXPECT_EQ(e.at(0), 5.0f);
  EXPECT_EQ(e.at(2), 1.0f);
  EXPECT_EQ(e.at(5), 6.0f);
}

TEST(Tensor, EmbeddingRejectsOutOfRangeIds) {
  auto w = nt::Tensor::zeros({3, 2});
  const int bad[] = {3};
  EXPECT_THROW(nt::embedding(w, bad), std::invalid_argument);
}

TEST(Tensor, Conv1dIdentityKernel) {
  auto x = nt::Tensor::from({1, 2, 3, 4}, {1, 4});
  auto w = nt::Tensor::from({0, 1, 0}, {1, 1, 3});  // identity with pad=1
  auto b = nt::Tensor::zeros({1});
  auto y = nt::conv1d(x, w, b, 1);
  ASSERT_EQ(y.shape(), (nt::Shape{1, 4}));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(y.at(i), x.at(i));
}

TEST(Tensor, Conv1dValidSum) {
  auto x = nt::Tensor::from({1, 2, 3, 4}, {1, 4});
  auto w = nt::Tensor::from({1, 1}, {1, 1, 2});
  auto b = nt::Tensor::from({0.5f}, {1});
  auto y = nt::conv1d(x, w, b, 0);
  ASSERT_EQ(y.shape(), (nt::Shape{1, 3}));
  EXPECT_EQ(y.at(0), 3.5f);
  EXPECT_EQ(y.at(2), 7.5f);
}

TEST(Tensor, ConcatAndSliceRows) {
  auto a = nt::Tensor::from({1, 2}, {1, 2});
  auto b = nt::Tensor::from({3, 4, 5, 6}, {2, 2});
  auto c = nt::concat_rows({a, b});
  ASSERT_EQ(c.shape(), (nt::Shape{3, 2}));
  EXPECT_EQ(c.at(4), 5.0f);
  auto s = nt::slice_rows(c, 1, 2);
  ASSERT_EQ(s.shape(), (nt::Shape{2, 2}));
  EXPECT_EQ(s.at(0), 3.0f);
}

TEST(Tensor, SliceCols) {
  auto a = nt::Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
  auto s = nt::slice_cols(a, 1, 2);
  ASSERT_EQ(s.shape(), (nt::Shape{2, 2}));
  EXPECT_EQ(s.at(0), 2.0f);
  EXPECT_EQ(s.at(3), 6.0f);
}

TEST(Tensor, MeanOverRows) {
  auto a = nt::Tensor::from({1, 2, 3, 4}, {2, 2});
  auto m = nt::mean_over_rows(a);
  ASSERT_EQ(m.shape(), (nt::Shape{1, 2}));
  EXPECT_EQ(m.at(0), 2.0f);
  EXPECT_EQ(m.at(1), 3.0f);
}

TEST(Tensor, Reductions) {
  auto a = nt::Tensor::from({1, 2, 3, 4}, {2, 2});
  EXPECT_EQ(nt::sum_all(a).item(), 10.0f);
  EXPECT_EQ(nt::mean_all(a).item(), 2.5f);
}

TEST(Tensor, LossValues) {
  auto pred = nt::Tensor::from({1, 2}, {2});
  auto target = nt::Tensor::from({0, 4}, {2});
  EXPECT_NEAR(nt::mse_loss(pred, target).item(), (1.0f + 4.0f) / 2.0f, 1e-6f);

  auto logits = nt::Tensor::from({10, 0, 0, 0, 10, 0}, {2, 3});
  const int targets[] = {0, 1};
  EXPECT_NEAR(nt::cross_entropy_rows(logits, targets).item(), 0.0f, 1e-3f);
  const int wrong[] = {1, 0};
  EXPECT_GT(nt::cross_entropy_rows(logits, wrong).item(), 5.0f);
}

TEST(Tensor, CrossEntropyIgnoresMaskedRows) {
  auto logits = nt::Tensor::from({10, 0, 0, 10}, {2, 2});
  const int targets[] = {0, -1};
  EXPECT_NEAR(nt::cross_entropy_rows(logits, targets).item(), 0.0f, 1e-3f);
}

TEST(Tensor, DetachBreaksHistory) {
  auto a = nt::Tensor::from({2.0f}, {1}, true);
  auto b = nt::scale(a, 3.0f).detach();
  EXPECT_FALSE(b.requires_grad());
  EXPECT_EQ(b.item(), 6.0f);
}

TEST(Optim, SgdDescendsQuadratic) {
  auto x = nt::Tensor::from({5.0f}, {1}, true);
  nt::Sgd opt({x}, 0.1f);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();
    auto loss = nt::mul(x, x);
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.item(), 0.0f, 1e-3f);
}

TEST(Optim, AdamFitsLinearRegression) {
  Rng rng(5);
  auto w = nt::Tensor::from({0.0f, 0.0f}, {2, 1}, true);
  auto b = nt::Tensor::zeros({1}, true);
  // Data: y = 3 x0 - 2 x1 + 1
  std::vector<float> xs, ys;
  for (int i = 0; i < 64; ++i) {
    const float x0 = static_cast<float>(rng.uniform(-1, 1));
    const float x1 = static_cast<float>(rng.uniform(-1, 1));
    xs.push_back(x0);
    xs.push_back(x1);
    ys.push_back(3.0f * x0 - 2.0f * x1 + 1.0f);
  }
  auto x = nt::Tensor::from(xs, {64, 2});
  auto y = nt::Tensor::from(ys, {64, 1});
  nt::Adam opt({w, b}, 0.05f);
  for (int step = 0; step < 400; ++step) {
    opt.zero_grad();
    auto pred = nt::add_bias(nt::matmul(x, w), b);
    auto loss = nt::mse_loss(pred, y);
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(w.at(0), 3.0f, 0.05f);
  EXPECT_NEAR(w.at(1), -2.0f, 0.05f);
  EXPECT_NEAR(b.at(0), 1.0f, 0.05f);
}

TEST(Optim, AdamBiasCorrectionIsDoublePrecision) {
  // Regression: the corrections were computed with float pow, which drifts
  // for long runs. Pin the double closed form and its shape.
  for (const std::int64_t t : {std::int64_t{1}, std::int64_t{10}, std::int64_t{100},
                               std::int64_t{10000}, std::int64_t{250000}}) {
    EXPECT_DOUBLE_EQ(nt::adam_bias_correction(0.9, t), 1.0 - std::pow(0.9, double(t)));
    EXPECT_DOUBLE_EQ(nt::adam_bias_correction(0.999, t), 1.0 - std::pow(0.999, double(t)));
  }
  // Strictly positive from the first step and monotone toward 1.
  double prev = 0.0;
  for (std::int64_t t = 1; t <= 2000; ++t) {
    const double bc = nt::adam_bias_correction(0.999, t);
    EXPECT_GT(bc, 0.0);
    EXPECT_GT(bc, prev);
    EXPECT_LE(bc, 1.0);
    prev = bc;
  }
}

TEST(Optim, AdamLongRunMatchesDoubleCorrectedReference) {
  // 20k steps on one parameter vs a mirror implementation that keeps float
  // m/v state but double bias corrections — long runs must not drift.
  auto p = nt::Tensor::from({1.0f}, {1}, true);
  nt::Adam opt({p}, 1e-3f);
  p.zero_grad();  // size the grad buffer
  float m = 0.0f, v = 0.0f;
  double ref = 1.0;
  for (std::int64_t t = 1; t <= 20000; ++t) {
    const float g = std::sin(0.01f * static_cast<float>(t));
    p.node()->grad[0] = g;
    opt.step();
    m = 0.9f * m + 0.1f * g;
    v = 0.999f * v + 0.001f * g * g;
    const double bc1 = 1.0 - std::pow(0.9, double(t));
    const double bc2 = 1.0 - std::pow(0.999, double(t));
    ref -= 1e-3 * (double(m) / bc1) / (std::sqrt(double(v) / bc2) + 1e-8);
  }
  EXPECT_TRUE(std::isfinite(p.at(0)));
  EXPECT_NEAR(p.at(0), static_cast<float>(ref), 2e-3);
}

TEST(Optim, ClipGradNormScalesDown) {
  auto x = nt::Tensor::from({3.0f, 4.0f}, {2}, true);
  nt::Sgd opt({x}, 0.0f);
  auto loss = nt::sum_all(nt::mul(x, x));
  loss.backward();  // grad = (6, 8), norm = 10
  const double pre = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(pre, 10.0, 1e-5);
  double post_sq = 0.0;
  for (float g : x.grad()) post_sq += g * g;
  EXPECT_NEAR(std::sqrt(post_sq), 1.0, 1e-5);
}

TEST(Optim, ParamCountAndStateBytes) {
  auto a = nt::Tensor::zeros({4, 4}, true);
  auto b = nt::Tensor::zeros({4}, true);
  nt::Adam adam({a, b}, 1e-3f);
  EXPECT_EQ(adam.param_count(), 20);
  EXPECT_EQ(adam.state_bytes(), 2 * 20 * 4);
}

TEST(Serialize, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "netllm_params_test.bin";
  Rng rng(1);
  auto w1 = nt::Tensor::randn({3, 4}, rng, 1.0f, true);
  auto w2 = nt::Tensor::randn({5}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"w1", w1}, {"w2", w2}});

  auto r1 = nt::Tensor::zeros({3, 4}, true);
  auto r2 = nt::Tensor::zeros({5}, true);
  nt::load_params(path.string(), {{"w1", r1}, {"w2", r2}});
  for (int i = 0; i < 12; ++i) EXPECT_EQ(r1.at(i), w1.at(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r2.at(i), w2.at(i));
  std::filesystem::remove(path);
}

TEST(Serialize, ShapeMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "netllm_params_mismatch.bin";
  auto w = nt::Tensor::zeros({2, 2}, true);
  nt::save_params(path.string(), {{"w", w}});
  auto bad = nt::Tensor::zeros({3}, true);
  EXPECT_THROW(nt::load_params(path.string(), {{"w", bad}}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingParamThrows) {
  const auto path = std::filesystem::temp_directory_path() / "netllm_params_missing.bin";
  auto w = nt::Tensor::zeros({2}, true);
  nt::save_params(path.string(), {{"w", w}});
  auto other = nt::Tensor::zeros({2}, true);
  EXPECT_THROW(nt::load_params(path.string(), {{"nope", other}}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Memory, InstrumentationTracksAllocations) {
  const auto before = nt::live_float_count();
  {
    auto t = nt::Tensor::zeros({100});
    EXPECT_GE(nt::live_float_count(), before + 100);
  }
  EXPECT_EQ(nt::live_float_count(), before);
  nt::reset_peak_float_count();
  {
    auto t = nt::Tensor::zeros({1000});
    EXPECT_GE(nt::peak_float_count(), before + 1000);
  }
}

// ---- Optimizer state round trips (durable-session satellite) ----

namespace {

/// One noisy quadratic-descent step shared by the resume-equivalence tests.
void noisy_quadratic_step(nt::Adam& opt, nt::Tensor& x, int t) {
  opt.zero_grad();
  auto loss = nt::mul(x, x);
  loss.backward();
  x.node()->grad[0] += 0.1f * std::sin(0.37f * static_cast<float>(t));
  opt.step();
}

}  // namespace

TEST(Optim, SgdStateRoundTrips) {
  auto x = nt::Tensor::from({5.0f}, {1}, true);
  nt::Sgd opt({x}, 0.1f);
  std::string blob;
  opt.save_state(blob);
  EXPECT_FALSE(blob.empty());  // tagged header even though SGD is stateless
  nt::Sgd other({x}, 0.1f);
  EXPECT_NO_THROW(other.load_state(blob));
}

TEST(Optim, SgdRejectsAdamState) {
  auto x = nt::Tensor::from({5.0f}, {1}, true);
  nt::Adam adam({x}, 0.1f);
  std::string blob;
  adam.save_state(blob);
  nt::Sgd sgd({x}, 0.1f);
  EXPECT_THROW(sgd.load_state(blob), std::runtime_error);
}

TEST(Optim, AdamStateRoundTripResumesBitwise) {
  // adapt(2N) ≡ adapt(N) -> save -> restore -> adapt(N), at the optimizer
  // level: moments and step count must survive the round trip exactly.
  auto a = nt::Tensor::from({4.0f}, {1}, true);
  nt::Adam ref({a}, 0.05f);
  for (int t = 0; t < 40; ++t) noisy_quadratic_step(ref, a, t);

  auto b = nt::Tensor::from({4.0f}, {1}, true);
  nt::Adam first({b}, 0.05f);
  for (int t = 0; t < 20; ++t) noisy_quadratic_step(first, b, t);
  std::string blob;
  first.save_state(blob);
  const float mid = b.at(0);

  auto c = nt::Tensor::from({mid}, {1}, true);
  nt::Adam second({c}, 0.05f);
  second.load_state(blob);
  EXPECT_EQ(second.step_count(), 20);
  for (int t = 20; t < 40; ++t) noisy_quadratic_step(second, c, t);

  // Bitwise, not approximate: a fresh-moment resume would only be close.
  EXPECT_EQ(a.at(0), c.at(0));
}

TEST(Optim, AdamLoadStateNamesOffendingParam) {
  auto a = nt::Tensor::zeros({2}, true);
  auto b = nt::Tensor::zeros({3}, true);
  nt::Adam src({a, b}, 1e-3f);
  std::string blob;
  src.save_state(blob);

  auto a2 = nt::Tensor::zeros({2}, true);
  auto b2 = nt::Tensor::zeros({4}, true);  // wrong size
  nt::Adam dst({a2, b2}, 1e-3f);
  const std::string names[] = {"enc.w", "head.w"};
  try {
    dst.load_state(blob, names);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("head.w"), std::string::npos) << e.what();
  }
  // Failed loads must not half-overwrite: the destination still steps from
  // fresh state without throwing.
  EXPECT_EQ(dst.step_count(), 0);
}

TEST(Optim, AdamLoadStateRejectsParamCountMismatch) {
  auto a = nt::Tensor::zeros({2}, true);
  nt::Adam src({a}, 1e-3f);
  std::string blob;
  src.save_state(blob);
  auto b = nt::Tensor::zeros({2}, true);
  auto c = nt::Tensor::zeros({2}, true);
  nt::Adam dst({b, c}, 1e-3f);
  EXPECT_THROW(dst.load_state(blob), std::runtime_error);
}
