// Tests for the VP environment: trace generator statistics, saliency
// rendering, dataset windowing, Table 2 settings and the MAE metric.
#include <gtest/gtest.h>

#include <cmath>

#include "envs/vp/dataset.hpp"
#include "envs/vp/viewport.hpp"

namespace vp = netllm::vp;

TEST(ViewportTraces, DeterministicAndBounded) {
  auto a = vp::generate_traces(vp::VpDataset::kJin2022, 2, 7);
  auto b = vp::generate_traces(vp::VpDataset::kJin2022, 2, 7);
  ASSERT_EQ(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].samples.size(), b[i].samples.size());
    for (std::size_t t = 0; t < a[i].samples.size(); ++t) {
      EXPECT_DOUBLE_EQ(a[i].samples[t].yaw, b[i].samples[t].yaw);
      EXPECT_LE(std::abs(a[i].samples[t].yaw), 160.0);
      EXPECT_LE(std::abs(a[i].samples[t].pitch), 60.0);
      EXPECT_LE(std::abs(a[i].samples[t].roll), 20.0);
    }
  }
}

TEST(ViewportTraces, DurationsMatchDatasets) {
  auto jin = vp::generate_traces(vp::VpDataset::kJin2022, 1, 1);
  auto wu = vp::generate_traces(vp::VpDataset::kWu2017, 1, 1);
  EXPECT_EQ(jin[0].samples.size(), static_cast<std::size_t>(60 * 5));
  EXPECT_EQ(wu[0].samples.size(), static_cast<std::size_t>(242 * 5));
}

TEST(ViewportTraces, MotionIsSmooth) {
  // Successive samples at 5 Hz should rarely jump more than a few degrees.
  auto traces = vp::generate_traces(vp::VpDataset::kJin2022, 3, 11);
  for (const auto& trace : traces) {
    int big_jumps = 0;
    for (std::size_t t = 1; t < trace.samples.size(); ++t) {
      if (std::abs(trace.samples[t].yaw - trace.samples[t - 1].yaw) > 15.0) ++big_jumps;
    }
    EXPECT_LT(big_jumps, static_cast<int>(trace.samples.size() / 20));
  }
}

TEST(ViewportTraces, Wu2017MovesFasterThanJin2022) {
  auto speed = [](const std::vector<vp::ViewportTrace>& traces) {
    double total = 0.0;
    int n = 0;
    for (const auto& trace : traces) {
      for (std::size_t t = 1; t < trace.samples.size(); ++t) {
        total += std::abs(trace.samples[t].yaw - trace.samples[t - 1].yaw);
        ++n;
      }
    }
    return total / n;
  };
  EXPECT_GT(speed(vp::generate_traces(vp::VpDataset::kWu2017, 4, 3)),
            speed(vp::generate_traces(vp::VpDataset::kJin2022, 4, 3)));
}

TEST(Saliency, BlobTracksHotspot) {
  auto traces = vp::generate_traces(vp::VpDataset::kJin2022, 1, 5);
  const auto& trace = traces[0];
  const int t = 100;
  auto img = vp::render_saliency(trace, t, 5);
  ASSERT_EQ(img.shape(), (netllm::tensor::Shape{16, 16}));
  // Brightest pixel should be near the hotspot's grid position.
  int best = 0;
  for (int i = 1; i < 256; ++i) {
    if (img.at(i) > img.at(best)) best = i;
  }
  const double bx = best % 16, by = best / 16;
  const auto& hs = trace.hotspot[t];
  const double cx = (hs.yaw + 160.0) / 320.0 * 15.0;
  const double cy = (hs.pitch + 60.0) / 120.0 * 15.0;
  EXPECT_LT(std::hypot(bx - cx, by - cy), 3.0);
  for (int i = 0; i < 256; ++i) {
    EXPECT_GE(img.at(i), 0.0f);
    EXPECT_LE(img.at(i), 1.0f);
  }
}

TEST(Dataset, WindowGeometryMatchesSetting) {
  auto setting = vp::vp_default_test();
  setting.num_traces = 2;
  auto samples = vp::build_dataset(setting, 10);
  ASSERT_FALSE(samples.empty());
  for (const auto& s : samples) {
    EXPECT_EQ(s.history.size(), static_cast<std::size_t>(2 * 5));
    EXPECT_EQ(s.future.size(), static_cast<std::size_t>(4 * 5));
    EXPECT_TRUE(s.saliency.defined());
  }
}

TEST(Dataset, MaxSamplesRespected) {
  auto setting = vp::vp_default_test();
  setting.num_traces = 2;
  EXPECT_EQ(vp::build_dataset(setting, 7).size(), 7u);
}

TEST(Dataset, FutureContinuesHistory) {
  auto setting = vp::vp_default_test();
  setting.num_traces = 1;
  auto samples = vp::build_dataset(setting, 3);
  for (const auto& s : samples) {
    // The first future sample should be close to the last history sample
    // (5 Hz smooth motion).
    EXPECT_LT(std::abs(s.future.front().yaw - s.history.back().yaw), 20.0);
  }
}

TEST(Settings, Table2RowsMatchPaper) {
  EXPECT_EQ(vp::vp_default_test().dataset, vp::VpDataset::kJin2022);
  EXPECT_DOUBLE_EQ(vp::vp_default_test().hw_s, 2.0);
  EXPECT_DOUBLE_EQ(vp::vp_default_test().pw_s, 4.0);
  EXPECT_EQ(vp::vp_unseen(1).dataset, vp::VpDataset::kJin2022);
  EXPECT_DOUBLE_EQ(vp::vp_unseen(1).hw_s, 4.0);
  EXPECT_DOUBLE_EQ(vp::vp_unseen(1).pw_s, 6.0);
  EXPECT_EQ(vp::vp_unseen(2).dataset, vp::VpDataset::kWu2017);
  EXPECT_DOUBLE_EQ(vp::vp_unseen(2).pw_s, 4.0);
  EXPECT_EQ(vp::vp_unseen(3).dataset, vp::VpDataset::kWu2017);
  EXPECT_DOUBLE_EQ(vp::vp_unseen(3).pw_s, 6.0);
  EXPECT_THROW(vp::vp_unseen(4), std::invalid_argument);
}

TEST(Mae, MatchesHandComputation) {
  std::vector<vp::Viewport> pred = {{1, 2, 3}, {0, 0, 0}};
  std::vector<vp::Viewport> actual = {{0, 0, 0}, {3, 3, 3}};
  // Step 1: (1+2+3)/3 = 2; step 2: (3+3+3)/3 = 3; mean = 2.5.
  EXPECT_DOUBLE_EQ(vp::viewport_mae(pred, actual), 2.5);
  EXPECT_THROW(vp::viewport_mae(pred, std::vector<vp::Viewport>{{0, 0, 0}}),
               std::invalid_argument);
}

namespace {

class LastValuePredictor final : public vp::VpPredictor {
 public:
  std::string name() const override { return "last-value"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history,
                                    const netllm::tensor::Tensor&, int horizon) override {
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
};

}  // namespace

TEST(Evaluate, PerSampleMaePipeline) {
  auto setting = vp::vp_default_test();
  setting.num_traces = 1;
  auto samples = vp::build_dataset(setting, 20);
  LastValuePredictor predictor;
  auto mae = vp::evaluate_mae(predictor, samples);
  ASSERT_EQ(mae.size(), samples.size());
  for (double m : mae) {
    EXPECT_GE(m, 0.0);
    EXPECT_LT(m, 180.0);
  }
}
