// Checkpoint hardening tests: container-v2 round trips, corruption detection
// (bit flips, truncation, bad magic), v1 backward compatibility, atomic-write
// crash simulation via the fault injector, and retry-with-backoff saves.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/crc32.hpp"
#include "core/fault.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"

namespace nt = netllm::tensor;
namespace fault = netllm::core::fault;
using netllm::core::Rng;

namespace {

std::filesystem::path tmp_path(const std::string& name) {
  return std::filesystem::temp_directory_path() / name;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_file(const std::filesystem::path& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void append_pod(std::string& buf, const T& v) {
  buf.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

/// Handcrafted legacy v1 container (no checksums, no footer) per the format
/// the seed repo wrote — guards backward compatibility.
std::string v1_container(const std::vector<std::pair<std::string, std::vector<float>>>& tensors) {
  std::string buf = "NLLM";
  append_pod(buf, std::uint32_t{1});
  append_pod(buf, static_cast<std::uint32_t>(tensors.size()));
  for (const auto& [name, data] : tensors) {
    append_pod(buf, static_cast<std::uint32_t>(name.size()));
    buf.append(name);
    append_pod(buf, std::uint32_t{1});  // rank
    append_pod(buf, static_cast<std::int64_t>(data.size()));
    buf.append(reinterpret_cast<const char*>(data.data()), data.size() * sizeof(float));
  }
  return buf;
}

class SerializeFaults : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm_all(); }
};

}  // namespace

TEST_F(SerializeFaults, V2RoundTripAndReport) {
  const auto path = tmp_path("netllm_v2_roundtrip.bin");
  Rng rng(1);
  auto w1 = nt::Tensor::randn({3, 4}, rng, 1.0f, true);
  auto w2 = nt::Tensor::randn({5}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"w1", w1}, {"w2", w2}});
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));  // renamed away

  auto r1 = nt::Tensor::zeros({3, 4}, true);
  auto r2 = nt::Tensor::zeros({5}, true);
  const auto report = nt::load_params_report(path.string(), {{"w1", r1}, {"w2", r2}});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.version, 2u);
  EXPECT_EQ(report.loaded, 2u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(r1.at(i), w1.at(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(r2.at(i), w2.at(i));
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, EveryBitFlipIsRejected) {
  const auto path = tmp_path("netllm_v2_bitflip.bin");
  Rng rng(2);
  auto w = nt::Tensor::randn({4, 4}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"weights", w}});
  const std::string image = read_file(path);

  // Flip one bit at a spread of offsets covering header, name, shape,
  // payload and footer: the load must throw every time.
  for (std::size_t pos = 0; pos < image.size(); pos += 7) {
    std::string corrupt = image;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    write_file(path, corrupt);
    auto r = nt::Tensor::zeros({4, 4}, true);
    EXPECT_THROW(nt::load_params(path.string(), {{"weights", r}}), std::runtime_error)
        << "bit flip at offset " << pos << " was not detected";
  }
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, PayloadFlipNamesTheBadTensor) {
  const auto path = tmp_path("netllm_v2_named.bin");
  Rng rng(3);
  auto a = nt::Tensor::randn({2, 2}, rng, 1.0f, true);
  auto b = nt::Tensor::randn({8}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"alpha", a}, {"beta", b}});
  std::string image = read_file(path);
  // Flip a byte in the *last* tensor's float payload (just before the
  // 4-byte footer), so the diagnostic must name "beta".
  image[image.size() - 8] = static_cast<char>(image[image.size() - 8] ^ 0x40);
  // Recompute nothing: the file CRC now also mismatches, but the per-tensor
  // check must still attribute the damage. Patch the footer so only the
  // tensor CRC catches it.
  {
    const std::size_t body = image.size() - 4;
    const auto crc = netllm::core::crc32(image.data(), body);
    std::memcpy(image.data() + body, &crc, sizeof(crc));
  }
  write_file(path, image);
  auto ra = nt::Tensor::zeros({2, 2}, true);
  auto rb = nt::Tensor::zeros({8}, true);
  try {
    nt::load_params(path.string(), {{"alpha", ra}, {"beta", rb}});
    FAIL() << "corrupt payload not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("beta"), std::string::npos) << e.what();
  }
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, TruncationMidTensorRejected) {
  const auto path = tmp_path("netllm_v2_trunc.bin");
  Rng rng(4);
  auto w = nt::Tensor::randn({16}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"w", w}});
  const std::string image = read_file(path);
  write_file(path, image.substr(0, image.size() / 2));
  auto r = nt::Tensor::zeros({16}, true);
  EXPECT_THROW(nt::load_params(path.string(), {{"w", r}}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, BadMagicRejected) {
  const auto path = tmp_path("netllm_v2_magic.bin");
  write_file(path, "XXXX not a container");
  auto r = nt::Tensor::zeros({1}, true);
  EXPECT_THROW(nt::load_params(path.string(), {{"w", r}}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, V1ContainersStillLoad) {
  const auto path = tmp_path("netllm_v1_compat.bin");
  write_file(path, v1_container({{"w", {1.5f, -2.0f, 0.25f}}}));
  auto r = nt::Tensor::zeros({3}, true);
  const auto report = nt::load_params_report(path.string(), {{"w", r}});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.version, 1u);
  EXPECT_EQ(r.at(0), 1.5f);
  EXPECT_EQ(r.at(1), -2.0f);
  EXPECT_EQ(r.at(2), 0.25f);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, MissingParametersAreNamed) {
  const auto path = tmp_path("netllm_v2_missing.bin");
  auto w = nt::Tensor::zeros({2}, true);
  nt::save_params(path.string(), {{"present", w}});
  auto a = nt::Tensor::zeros({2}, true);
  auto b = nt::Tensor::zeros({2}, true);
  try {
    nt::load_params(path.string(), {{"present", a}, {"head.fc.weight", b}});
    FAIL() << "missing parameter not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("head.fc.weight"), std::string::npos) << e.what();
  }
  const auto report =
      nt::load_params_report(path.string(), {{"present", a}, {"head.fc.weight", b}});
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "head.fc.weight");
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, DuplicateParamNamesThrowOnSaveAndLoad) {
  const auto path = tmp_path("netllm_v2_dup.bin");
  auto w1 = nt::Tensor::zeros({2}, true);
  auto w2 = nt::Tensor::zeros({2}, true);
  EXPECT_THROW(nt::save_params(path.string(), {{"w", w1}, {"w", w2}}), std::runtime_error);
  nt::save_params(path.string(), {{"w", w1}});
  EXPECT_THROW(nt::load_params(path.string(), {{"w", w1}, {"w", w2}}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, ReportTracksExtraAndMismatched) {
  const auto path = tmp_path("netllm_v2_report.bin");
  Rng rng(5);
  auto keep = nt::Tensor::randn({2, 3}, rng, 1.0f, true);
  auto drop = nt::Tensor::randn({4}, rng, 1.0f, true);
  auto wrong = nt::Tensor::randn({5}, rng, 1.0f, true);
  nt::save_params(path.string(), {{"keep", keep}, {"drop", drop}, {"wrong", wrong}});
  auto rk = nt::Tensor::zeros({2, 3}, true);
  auto rw = nt::Tensor::zeros({6}, true);  // shape differs from the file's {5}
  const auto report = nt::load_params_report(path.string(), {{"keep", rk}, {"wrong", rw}});
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.loaded, 1u);
  ASSERT_EQ(report.extra.size(), 1u);
  EXPECT_EQ(report.extra[0], "drop");
  ASSERT_EQ(report.mismatched.size(), 1u);
  EXPECT_EQ(report.mismatched[0].substr(0, 5), "wrong");
  EXPECT_TRUE(report.missing.empty());
  EXPECT_NE(report.summary().find("wrong"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, InterruptedSaveLeavesPreviousSnapshotIntact) {
  const auto path = tmp_path("netllm_v2_atomic.bin");
  auto old_w = nt::Tensor::full({4}, 1.0f, true);
  nt::save_params(path.string(), {{"w", old_w}});

  // Crash between the tmp write and the rename: the new image never lands.
  auto new_w = nt::Tensor::full({4}, 2.0f, true);
  fault::arm("serialize.rename", {.kind = fault::FaultKind::Throw});
  EXPECT_THROW(nt::save_params(path.string(), {{"w", new_w}}), fault::FaultInjected);
  fault::disarm_all();

  auto r = nt::Tensor::zeros({4}, true);
  nt::load_params(path.string(), {{"w", r}});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.at(i), 1.0f);  // previous values

  // Torn write (truncated tmp image): same guarantee.
  fault::arm("serialize.write", {.kind = fault::FaultKind::TruncateIo, .truncate_to = 10});
  EXPECT_THROW(nt::save_params(path.string(), {{"w", new_w}}), fault::FaultInjected);
  fault::disarm_all();
  nt::load_params(path.string(), {{"w", r}});
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.at(i), 1.0f);

  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".tmp");
}

TEST_F(SerializeFaults, FsyncFaultAlsoLeavesPreviousSnapshot) {
  const auto path = tmp_path("netllm_v2_fsync.bin");
  auto old_w = nt::Tensor::full({2}, 3.0f, true);
  nt::save_params(path.string(), {{"w", old_w}});
  fault::arm("serialize.fsync", {.kind = fault::FaultKind::Throw});
  auto new_w = nt::Tensor::full({2}, 4.0f, true);
  EXPECT_THROW(nt::save_params(path.string(), {{"w", new_w}}), fault::FaultInjected);
  fault::disarm_all();
  auto r = nt::Tensor::zeros({2}, true);
  nt::load_params(path.string(), {{"w", r}});
  EXPECT_EQ(r.at(0), 3.0f);
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".tmp");
}

TEST_F(SerializeFaults, SaveRetrySucceedsAfterTransientFailures) {
  const auto path = tmp_path("netllm_v2_retry.bin");
  auto w = nt::Tensor::full({3}, 7.0f, true);
  // First two write attempts fail, the third succeeds.
  fault::arm("serialize.write", {.kind = fault::FaultKind::Throw, .times = 2});
  nt::save_params_retry(path.string(), {{"w", w}},
                        {.attempts = 4, .initial_backoff_ms = 1, .max_backoff_ms = 4});
  EXPECT_EQ(fault::fired("serialize.write"), 2);
  fault::disarm_all();
  auto r = nt::Tensor::zeros({3}, true);
  nt::load_params(path.string(), {{"w", r}});
  EXPECT_EQ(r.at(0), 7.0f);
  std::filesystem::remove(path);
}

TEST_F(SerializeFaults, SaveRetryGivesUpAndRethrows) {
  const auto path = tmp_path("netllm_v2_retry_fail.bin");
  auto w = nt::Tensor::full({3}, 7.0f, true);
  fault::arm("serialize.write", {.kind = fault::FaultKind::Throw, .times = -1});
  EXPECT_THROW(nt::save_params_retry(path.string(), {{"w", w}},
                                     {.attempts = 3, .initial_backoff_ms = 1, .max_backoff_ms = 2}),
               fault::FaultInjected);
  EXPECT_EQ(fault::fired("serialize.write"), 3);
  fault::disarm_all();
  std::filesystem::remove(path.string() + ".tmp");
}

// ---- v3 session records (durable-session satellite) ----

TEST_F(SerializeFaults, V3SessionRoundTripCarriesSections) {
  const auto path = tmp_path("netllm_v3_roundtrip.bin");
  Rng rng(4);
  auto w = nt::Tensor::randn({3, 3}, rng, 1.0f, true);
  const nt::SessionSections sections = {{"fingerprint", "task=vp;seed=7"},
                                        {"rng", std::string("\x01\x02\x00\x7f", 4)}};
  nt::save_session(path.string(), {{"w", w}}, sections);

  auto w2 = nt::Tensor::zeros({3, 3}, true);
  nt::SessionSections loaded;
  const auto report = nt::load_params_report(path.string(), {{"w", w2}}, &loaded);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.version, 3u);
  EXPECT_TRUE(report.has_session());
  ASSERT_EQ(report.sections.size(), 2u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].first, "fingerprint");
  EXPECT_EQ(loaded[0].second, "task=vp;seed=7");
  EXPECT_EQ(loaded[1].first, "rng");
  EXPECT_EQ(loaded[1].second, std::string("\x01\x02\x00\x7f", 4));
  for (std::int64_t i = 0; i < w.numel(); ++i) EXPECT_EQ(w2.data()[i], w.data()[i]);
  EXPECT_NE(report.summary().find("session sections"), std::string::npos);
}

TEST_F(SerializeFaults, V3SectionBitFlipNamesTheSection) {
  const auto path = tmp_path("netllm_v3_secflip.bin");
  auto w = nt::Tensor::from({1.0f}, {1}, true);
  const std::string payload = "SECTION-PAYLOAD-0123456789";
  nt::save_session(path.string(), {{"w", w}}, {{"optimizer", payload}});

  std::string image = read_file(path);
  const auto off = image.find(payload);
  ASSERT_NE(off, std::string::npos);
  image[off + 3] ^= 0x10;  // flip a bit inside the section blob...
  // ...and re-stamp the file CRC so only the per-section CRC can catch it.
  const std::size_t body = image.size() - sizeof(std::uint32_t);
  const std::uint32_t crc = netllm::core::crc32(image.data(), body);
  std::memcpy(image.data() + body, &crc, sizeof(crc));
  write_file(path, image);

  nt::SessionSections loaded;
  try {
    (void)nt::load_params_report(path.string(), {{"w", w}}, &loaded);
    FAIL() << "expected checksum mismatch";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("optimizer"), std::string::npos) << e.what();
  }
}

TEST_F(SerializeFaults, V1LoadsUnderV3ReaderWithoutSessionSections) {
  const auto path = tmp_path("netllm_v1_under_v3.bin");
  write_file(path, v1_container({{"w", {1.5f, -2.0f, 0.25f}}}));
  auto w = nt::Tensor::zeros({3}, true);
  nt::SessionSections loaded = {{"stale", "junk"}};  // must be cleared
  const auto report = nt::load_params_report(path.string(), {{"w", w}}, &loaded);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.version, 1u);
  EXPECT_FALSE(report.has_session());
  EXPECT_TRUE(report.sections.empty());
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(w.at(0), 1.5f);
}

TEST_F(SerializeFaults, V2LoadsUnderV3ReaderWithoutSessionSections) {
  const auto path = tmp_path("netllm_v2_under_v3.bin");
  auto w = nt::Tensor::from({2.0f, 4.0f}, {2}, true);
  nt::save_params(path.string(), {{"w", w}});  // plain snapshots stay v2
  auto w2 = nt::Tensor::zeros({2}, true);
  nt::SessionSections loaded = {{"stale", "junk"}};
  const auto report = nt::load_params_report(path.string(), {{"w", w2}}, &loaded);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.version, 2u);
  EXPECT_FALSE(report.has_session());
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(w2.at(1), 4.0f);
}

TEST_F(SerializeFaults, V3TruncatedSectionRejected) {
  const auto path = tmp_path("netllm_v3_trunc.bin");
  auto w = nt::Tensor::from({1.0f}, {1}, true);
  nt::save_session(path.string(), {{"w", w}}, {{"rng", std::string(64, 'r')}});
  const std::string image = read_file(path);
  write_file(path, image.substr(0, image.size() - 20));  // cut into the section
  EXPECT_THROW((void)nt::load_params_report(path.string(), {{"w", w}}, nullptr),
               std::runtime_error);
}
