// Cross-module integration tests: end-to-end flows through the Fig. 9 API,
// determinism of experience collection, isolation of per-task adaptations,
// and the Fig. 2 mechanics (token path vs networking head) on tiny models.
#include <gtest/gtest.h>

#include "baselines/abr/rule_based.hpp"
#include "baselines/cjs/rule_based.hpp"
#include "core/stats.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"
#include "netllm/prompt_vp.hpp"

namespace ad = netllm::adapt;
namespace abr = netllm::abr;
namespace cjs = netllm::cjs;
namespace vp = netllm::vp;
using netllm::core::Rng;

namespace {

std::shared_ptr<netllm::llm::MiniGpt> tiny_llm(std::uint64_t seed = 1) {
  netllm::llm::MiniGptConfig cfg;
  cfg.vocab = netllm::llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.max_seq = 112;
  Rng rng(seed);
  return std::make_shared<netllm::llm::MiniGpt>(cfg, rng);
}

}  // namespace

TEST(Integration, ExperienceCollectionIsDeterministic) {
  auto setting = abr::abr_default_train();
  setting.num_traces = 3;
  netllm::baselines::Bba bba1, bba2;
  auto p1 = ad::api::RL_Collect(bba1, setting, 1, 0.2, 9);
  auto p2 = ad::api::RL_Collect(bba2, setting, 1, 0.2, 9);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t t = 0; t < p1.size(); ++t) {
    ASSERT_EQ(p1[t].size(), p2[t].size());
    for (std::size_t i = 0; i < p1[t].size(); ++i) {
      EXPECT_EQ(p1[t][i].action, p2[t][i].action);
      EXPECT_EQ(p1[t][i].reward, p2[t][i].reward);
    }
  }
}

TEST(Integration, CjsCollectAdaptTestViaApi) {
  cjs::WorkloadConfig base;
  base.num_job_requests = 8;
  base.executor_units_k = 6;
  base.scale = 1.0;
  base.seed = 5;
  netllm::baselines::FairScheduler fair;
  auto pool = ad::api::RL_Collect(fair, base, 3, 7);
  ASSERT_EQ(pool.size(), 3u);
  Rng rng(8);
  ad::CjsAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.context_window = 4;
  ad::api::AdaptOptions opts;
  opts.steps = 25;
  auto sched = ad::api::Adapt(tiny_llm(), pool, cfg, opts, rng);
  const double jct = ad::api::Test(*sched, base);
  EXPECT_GT(jct, 0.0);
}

TEST(Integration, PerTaskAdaptationsShareNoState) {
  // Adapting two tasks on separate backbone copies must not interact: the
  // VP adapter's predictions are unchanged by ABR training on another copy.
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  auto data = vp::build_dataset(setting, 10);
  Rng rng1(1), rng2(2);
  ad::VpAdapterConfig vp_cfg;
  vp_cfg.lora_rank = 2;
  ad::VpAdapter vp_model(tiny_llm(7), vp_cfg, rng1);
  auto before = vp_model.predict(data[0].history, data[0].saliency, 5);

  auto abr_setting = abr::abr_default_train();
  abr_setting.num_traces = 2;
  netllm::baselines::Bba bba;
  auto pool = ad::api::RL_Collect(bba, abr_setting, 1, 0.1, 3);
  ad::AbrAdapterConfig abr_cfg;
  abr_cfg.lora_rank = 2;
  abr_cfg.context_window = 4;
  ad::AbrAdapter abr_model(tiny_llm(7), abr_cfg, rng2);
  abr_model.adapt(pool, 30, 1e-3f, 4);

  auto after = vp_model.predict(data[0].history, data[0].saliency, 5);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].yaw, after[i].yaw);
  }
}

TEST(Integration, NetworkingHeadIsSingleInferenceAndAlwaysValid) {
  // Fig. 2 mechanics: the token path takes many autoregressive inferences
  // and can be unparseable; the networking head emits one valid answer per
  // forward pass, structurally.
  auto setting = vp::vp_default_test();
  setting.num_traces = 1;
  auto data = vp::build_dataset(setting, 6);

  ad::PromptVpModel token_path(tiny_llm(3));
  Rng rng(4);
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  ad::VpAdapter head_path(tiny_llm(3), cfg, rng);

  int token_inferences = 0;
  for (const auto& s : data) {
    token_path.predict(s.history, s.saliency, 5);
    token_inferences += token_path.last_generation_tokens();
    const auto pred = head_path.predict(s.history, s.saliency, 5);
    ASSERT_EQ(pred.size(), 5u);  // a complete, in-range answer every time
  }
  // The token path needed many generation steps across the samples; the
  // head needed exactly horizon forwards per sample by construction.
  EXPECT_GT(token_inferences, 0);
}

TEST(Integration, RewardFeedbackReachesReturnConditionedPolicies) {
  // The simulator must deliver rewards to SchedPolicy::observe_reward.
  class Recorder final : public cjs::SchedPolicy {
   public:
    std::string name() const override { return "recorder"; }
    void observe_reward(double r) override { total += r; }
    cjs::SchedAction choose(const cjs::SchedObservation&) override { return {0, 3}; }
    double total = 0.0;
  };
  Recorder rec;
  cjs::WorkloadConfig cfg;
  cfg.num_job_requests = 6;
  cfg.executor_units_k = 4;
  cfg.scale = 1.0;
  cfg.seed = 2;
  const auto result = cjs::run_workload(cfg, rec);
  // All reward except the tail after the last decision is reported.
  EXPECT_LT(rec.total, 0.0);
  EXPECT_GE(rec.total, result.total_reward - 1e-9);
}

TEST(Integration, Table1TaskInventoryIsCovered) {
  // Table 1's three rows exist as working pipelines: SL prediction (VP),
  // RL distributed control (ABR), RL centralized control (CJS).
  auto vp_setting = vp::vp_default_test();
  vp_setting.num_traces = 1;
  EXPECT_FALSE(vp::build_dataset(vp_setting, 3).empty());

  auto abr_setting = abr::abr_default_test();
  abr_setting.num_traces = 1;
  netllm::baselines::Bba bba;
  EXPECT_EQ(ad::api::RL_Collect(bba, abr_setting, 1, 0.0, 1).size(), 1u);

  cjs::WorkloadConfig cjs_cfg;
  cjs_cfg.num_job_requests = 4;
  cjs_cfg.executor_units_k = 4;
  cjs_cfg.scale = 1.0;
  netllm::baselines::FifoScheduler fifo;
  EXPECT_EQ(cjs::run_workload(cjs_cfg, fifo).jct_s.size(), 4u);
}
