// Observability suite (ctest -L observability): the DESIGN.md §11 metrics /
// trace layer and the serve-path ticket & locking fixes that ride with it.
//
// Pinned claims:
//   - counter bumps are exact under concurrency (sharded slots lose nothing),
//   - histogram percentiles track `core::percentile` within the documented
//     bucket error, and count/sum/min/max are exact,
//   - disabled mode records nothing and perturbs nothing — adapt()/generate()
//     are bitwise identical with metrics on and off,
//   - submit() tickets are generation-stamped: a ticket can never silently
//     alias into a different batch's response slot,
//   - the guard's fallback runs outside the guard mutex (cooldown AND
//     failure paths), and non-std exceptions degrade one request instead of
//     poisoning the batch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <vector>

#include "baselines/abr/rule_based.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/stats.hpp"
#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "llm/minigpt.hpp"
#include "llm/tokenizer.hpp"
#include "netllm/api.hpp"
#include "netllm/serve.hpp"

namespace ad = netllm::adapt;
namespace llm = netllm::llm;
namespace nc = netllm::core;
namespace nm = netllm::core::metrics;
namespace nt = netllm::core::trace;
namespace serve = netllm::serve;
namespace vp = netllm::vp;
using netllm::core::Rng;
using netllm::tensor::Tensor;

namespace {

/// Restores the default global pool size when a test exits.
struct ThreadGuard {
  ~ThreadGuard() { nc::set_global_threads(0); }
};

/// Every test starts from a clean, enabled registry and leaves it that way.
class Observability : public ::testing::Test {
 protected:
  void SetUp() override {
    nm::set_enabled(true);
    nm::reset();
  }
  void TearDown() override {
    nm::set_enabled(true);
    nm::reset();
    nc::set_global_threads(0);
  }
};

llm::MiniGptConfig tiny_config(std::int64_t max_seq = 48) {
  llm::MiniGptConfig cfg;
  cfg.vocab = llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = max_seq;
  return cfg;
}

std::shared_ptr<llm::MiniGpt> tiny_llm(std::uint64_t seed, std::int64_t max_seq = 48) {
  Rng rng(seed);
  return std::make_shared<llm::MiniGpt>(tiny_config(max_seq), rng);
}

std::vector<int> random_prompt(std::size_t len, Rng& rng, std::int64_t vocab) {
  std::vector<int> p(len);
  for (auto& t : p) t = static_cast<int>(rng.randint(3, vocab - 1));
  return p;
}

vp::Viewport make_viewport(double roll, double pitch, double yaw) {
  vp::Viewport v;
  v.roll = roll;
  v.pitch = pitch;
  v.yaw = yaw;
  return v;
}

serve::VpRequest trivial_vp_request(int horizon = 2) {
  serve::VpRequest req;
  req.history = {make_viewport(0.0, 0.0, 10.0), make_viewport(1.0, 2.0, 12.0)};
  req.saliency = Tensor::zeros({4, 4});
  req.horizon = horizon;
  return req;
}

/// Always answers with `horizon` copies of the last history viewport.
class TrivialVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "trivial"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
};

netllm::abr::Observation abr_observation() {
  netllm::abr::Observation obs;
  obs.past_throughput_mbps.assign(netllm::abr::Observation::kHistory, 3.0);
  obs.past_delay_s.assign(netllm::abr::Observation::kHistory, 0.1);
  obs.next_chunk_sizes_mbytes = {0.5, 1.0, 2.0, 4.0};
  obs.future_chunk_sizes_mbytes.assign(netllm::abr::Observation::kHorizon * 4, 1.0);
  obs.buffer_s = 10.0;
  obs.chunks_remaining = 10;
  obs.num_levels = 4;
  return obs;
}

}  // namespace

// ---------- counters & histograms ----------

TEST_F(Observability, CounterBumpsAreExactAcrossThreads) {
  ThreadGuard guard;
  nc::set_global_threads(4);
  auto& c = nm::counter("obs.test.parallel_bumps");
  auto& h = nm::histogram("obs.test.parallel_hist");
  constexpr std::int64_t kN = 100000;
  nc::parallel_for(kN, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      c.add();
      h.record(1.0);
    }
  });
  EXPECT_EQ(c.value(), kN);  // sharded slots lose no bump
  EXPECT_EQ(h.count(), kN);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, kN);
  EXPECT_EQ(snap.min, 1.0);
  EXPECT_EQ(snap.max, 1.0);
  EXPECT_NEAR(snap.sum, static_cast<double>(kN), 1e-6);
}

TEST_F(Observability, HistogramTracksExactAggregatesAndPercentiles) {
  auto& h = nm::histogram("obs.test.percentiles");
  Rng rng(42);
  std::vector<double> samples;
  samples.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    // Log-uniform over [1e-3, 1e2] ms: spans ~17 octaves of the bucket range.
    samples.push_back(1e-3 * std::pow(10.0, rng.uniform() * 5.0));
    h.record(samples.back());
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, 10000);
  EXPECT_EQ(snap.min, sorted.front());  // min/max/count are exact, not bucketed
  EXPECT_EQ(snap.max, sorted.back());
  double exact_sum = 0.0;
  for (double s : samples) exact_sum += s;
  EXPECT_NEAR(snap.sum, exact_sum, std::abs(exact_sum) * 1e-9);
  // Bucket-midpoint percentiles vs the exact sample percentiles: within the
  // documented ~6% bucket error (factor 2^(1/6) buckets), asserted at 8%.
  for (auto [p, est] : {std::pair{50.0, snap.p50}, {90.0, snap.p90}, {99.0, snap.p99}}) {
    const double exact = nc::percentile(sorted, p);
    EXPECT_NEAR(est, exact, exact * 0.08) << "p" << p;
    EXPECT_NEAR(h.percentile(p), exact, exact * 0.08) << "p" << p;
  }
}

TEST_F(Observability, DisabledModeRecordsNothingAndSnapshotsZero) {
  auto& c = nm::counter("obs.test.disabled_counter");
  auto& g = nm::gauge("obs.test.disabled_gauge");
  auto& h = nm::histogram("obs.test.disabled_hist");
  nm::set_enabled(false);
  EXPECT_FALSE(nm::enabled());
  c.add(7);
  g.set(3.5);
  h.record(12.0);
  {
    nt::Span span(nt::Phase::kEncode);  // no clock read, no record
  }
  nm::set_enabled(true);
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

TEST_F(Observability, LegacyCounterApiSharesStorageWithRegistry) {
  nm::counter("obs.test.shim").add(5);
  EXPECT_EQ(nc::counter_value("obs.test.shim"), 5);  // string API sees the handle's value
  nc::counter_add("obs.test.shim", 2);
  EXPECT_EQ(nm::counter("obs.test.shim").value(), 7);
  bool found = false;
  for (const auto& [name, value] : nc::counters_snapshot()) {
    if (name == "obs.test.shim") {
      found = true;
      EXPECT_EQ(value, 7);
    }
  }
  EXPECT_TRUE(found);
  nc::counters_reset();
  EXPECT_EQ(nm::counter("obs.test.shim").value(), 0);
}

TEST_F(Observability, RegistryReturnsStableHandlesAndJsonParsesShape) {
  auto& a = nm::counter("obs.test.stable");
  auto& b = nm::counter("obs.test.stable");
  EXPECT_EQ(&a, &b);  // same name, same handle
  a.add(3);
  nm::histogram("obs.test.json_hist").record(1.5);
  const auto json = nm::to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.stable\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"obs.test.json_hist\""), std::string::npos);
}

// ---------- trace spans ----------

TEST_F(Observability, GeneratePathsAttributePrefillAndDecodeSpans) {
  auto gpt = tiny_llm(3);
  Rng rng(5);
  const auto prompt = random_prompt(6, rng, gpt->config().vocab);
  auto& prefill = nt::phase_histogram(nt::Phase::kPrefill);
  auto& decode = nt::phase_histogram(nt::Phase::kDecodeStep);

  nm::reset();
  auto uncached = gpt->generate(prompt, 4, /*stop_token=*/-1, /*use_cache=*/false);
  ASSERT_EQ(uncached.size(), 4u);
  // Uncached Fig. 2 loop: first forward is the prompt prefill, the three
  // re-forwards are decode steps — that attribution is the whole point.
  EXPECT_EQ(prefill.count(), 1);
  EXPECT_EQ(decode.count(), 3);

  nm::reset();
  auto cached = gpt->generate(prompt, 4, -1, /*use_cache=*/true);
  ASSERT_EQ(cached, uncached);
  EXPECT_EQ(prefill.count(), 1);  // prefill() once
  EXPECT_EQ(decode.count(), 3);   // decode_step per kept token except the last
}

TEST_F(Observability, ServePathRecordsEncodeHeadGuardAndTaskHistograms) {
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<TrivialVp>(), std::make_shared<netllm::baselines::Bba>(), nullptr);
  for (int i = 0; i < 3; ++i) {
    engine->submit(trivial_vp_request());
    engine->submit(serve::AbrRequest{abr_observation()});
  }
  const auto report = engine->run();
  EXPECT_EQ(report.requests, 6u);
  // Guard bookkeeping spans fired for every request (twice each: cooldown
  // check + outcome transition).
  EXPECT_GE(nt::phase_histogram(nt::Phase::kGuard).count(), 6);
  // Per-task latency split histograms saw every request of their task.
  EXPECT_EQ(nm::histogram("serve.vp.compute_ms").count(), 3);
  EXPECT_EQ(nm::histogram("serve.vp.queue_wait_ms").count(), 3);
  EXPECT_EQ(nm::histogram("serve.abr.compute_ms").count(), 3);
  EXPECT_EQ(nm::histogram("serve.abr.queue_wait_ms").count(), 3);
  EXPECT_EQ(nm::counter("serve.vp.llm_ok").value(), 3);
  EXPECT_EQ(nm::counter("serve.abr.llm_ok").value(), 3);
}

// ---------- determinism: instrumentation must not perturb results ----------

TEST_F(Observability, GenerateBitwiseIdenticalWithMetricsOnAndOff) {
  Rng prompt_rng(17);
  const auto prompt = random_prompt(7, prompt_rng, tiny_config().vocab);
  nm::set_enabled(true);
  const auto on_uncached = tiny_llm(9)->generate(prompt, 8, -1, false);
  const auto on_cached = tiny_llm(9)->generate(prompt, 8, -1, true);
  nm::set_enabled(false);
  const auto off_uncached = tiny_llm(9)->generate(prompt, 8, -1, false);
  const auto off_cached = tiny_llm(9)->generate(prompt, 8, -1, true);
  nm::set_enabled(true);
  EXPECT_EQ(on_uncached, off_uncached);
  EXPECT_EQ(on_cached, off_cached);
}

TEST_F(Observability, AdaptBitwiseIdenticalWithMetricsOnAndOff) {
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  const auto dataset = vp::build_dataset(setting, 4);
  auto run_once = [&] {
    ad::VpAdapterConfig cfg;
    cfg.lora_rank = 2;
    cfg.lora_alpha = 4.0f;
    Rng rng(21);
    ad::VpAdapter adapter(tiny_llm(21, 112), cfg, rng);
    auto stats = adapter.adapt(dataset, /*steps=*/3, /*lr=*/1e-3f, /*seed=*/77);
    auto rollout = adapter.predict(dataset[0].history, dataset[0].saliency, 3);
    return std::pair{stats.final_loss, rollout};
  };
  nm::set_enabled(true);
  const auto on = run_once();
  EXPECT_EQ(nm::counter("adapt.vp.steps").value(), 3);
  EXPECT_EQ(nm::histogram("adapt.vp.step_ms").count(), 3);
  nm::set_enabled(false);
  const auto off = run_once();
  nm::set_enabled(true);
  EXPECT_EQ(on.first, off.first);  // bitwise: loss float equality
  ASSERT_EQ(on.second.size(), off.second.size());
  for (std::size_t i = 0; i < on.second.size(); ++i) {
    EXPECT_EQ(on.second[i].roll, off.second[i].roll);
    EXPECT_EQ(on.second[i].pitch, off.second[i].pitch);
    EXPECT_EQ(on.second[i].yaw, off.second[i].yaw);
  }
}

// ---------- ticket epochs (submit/run aliasing fix) ----------

TEST_F(Observability, TicketsRejectLookupsAgainstTheWrongBatch) {
  auto engine =
      std::make_shared<serve::InferenceEngine>(std::make_shared<TrivialVp>(), nullptr, nullptr);
  const auto t1 = engine->submit(trivial_vp_request());
  EXPECT_EQ(t1.index, 0u);
  // Not drained yet: the generation has not run.
  EXPECT_THROW(engine->vp_response(t1), serve::StaleTicket);
  engine->run();
  EXPECT_EQ(engine->vp_response(t1).viewports.size(), 2u);

  // Pre-fix bug: submit() returned a bare index, so this second batch's
  // ticket 0 silently aliased the first batch's slot 0. Epoch stamping makes
  // the old ticket a named error instead.
  const auto t2 = engine->submit(trivial_vp_request(3));
  EXPECT_EQ(t2.index, 0u);
  EXPECT_NE(t2.epoch, t1.epoch);
  engine->run();
  EXPECT_THROW(engine->vp_response(t1), serve::StaleTicket);
  EXPECT_EQ(engine->vp_response(t2).viewports.size(), 3u);
  // A ticket for the wrong task's queue is an index error, not an alias.
  EXPECT_THROW(engine->abr_response(t2), std::out_of_range);
}

TEST_F(Observability, StaleTicketMessageNamesPresentedEpochIndexAndCurrentEpoch) {
  auto engine =
      std::make_shared<serve::InferenceEngine>(std::make_shared<TrivialVp>(), nullptr, nullptr);
  engine->submit(trivial_vp_request());
  engine->run();  // completed epoch is now 1
  const auto stale = engine->submit(trivial_vp_request());  // epoch 2, index 0
  try {
    engine->vp_response(stale);
    FAIL() << "expected StaleTicket";
  } catch (const serve::StaleTicket& e) {
    const std::string msg = e.what();
    // The operator debugging an aliasing report needs the full identity of
    // what was presented and what the engine holds, not just "stale".
    EXPECT_NE(msg.find("{epoch 2, index 0}"), std::string::npos) << msg;
    EXPECT_NE(msg.find("completed batch 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("not drained yet"), std::string::npos) << msg;
  }
  engine->run();
  engine->run();  // replace the generation: the other arm of the message
  try {
    engine->vp_response(stale);
    FAIL() << "expected StaleTicket";
  } catch (const serve::StaleTicket& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("{epoch 2, index 0}"), std::string::npos) << msg;
    EXPECT_NE(msg.find("replaced these responses"), std::string::npos) << msg;
  }
}

namespace {

/// Re-entrantly submits one more request from inside predict(), like a
/// client enqueueing follow-up work while a drain is in flight.
class ResubmittingVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "resubmitting"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    if (engine && !resubmitted.exchange(true)) {
      inner_ticket = engine->submit(trivial_vp_request());
    }
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
  serve::InferenceEngine* engine = nullptr;
  std::atomic<bool> resubmitted{false};
  std::optional<serve::Ticket> inner_ticket;
};

}  // namespace

TEST_F(Observability, SubmitDuringRunLandsInTheNextGeneration) {
  auto model = std::make_shared<ResubmittingVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(model, nullptr, nullptr);
  model->engine = engine.get();
  const auto outer = engine->submit(trivial_vp_request());
  engine->run();
  EXPECT_EQ(engine->vp_response(outer).meta.source, serve::Source::kLlm);

  // The mid-run submit was stamped for the NEXT generation: it cannot read
  // the batch it raced with, and resolves only after its own drain.
  ASSERT_TRUE(model->inner_ticket.has_value());
  const auto inner = *model->inner_ticket;
  EXPECT_EQ(inner.epoch, outer.epoch + 1);
  EXPECT_EQ(engine->pending(), 1u);
  EXPECT_THROW(engine->vp_response(inner), serve::StaleTicket);
  engine->run();
  EXPECT_EQ(engine->vp_response(inner).viewports.size(), 2u);
  EXPECT_THROW(engine->vp_response(outer), serve::StaleTicket);
}

// ---------- fallback locking fixes ----------

namespace {

class AlwaysThrowVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "always-throw"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport>, const Tensor&, int) override {
    throw std::runtime_error("primary down");
  }
};

/// Throws a non-std::exception payload, like a plugged-in model written
/// against a foreign error discipline.
class IntThrowVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "int-throw"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport>, const Tensor&, int) override {
    throw 42;
  }
};

/// Fallback whose calls after the first rendezvous with each other: two
/// callers must be inside predict() at the same time before either returns.
/// Possible only if decide() runs the fallback outside the guard mutex.
class RendezvousFallbackVp : public vp::VpPredictor {
 public:
  std::string name() const override { return "rendezvous-fallback"; }
  std::vector<vp::Viewport> predict(std::span<const vp::Viewport> history, const Tensor&,
                                    int horizon) override {
    if (++calls > 1) {
      std::unique_lock<std::mutex> lk(mu);
      ++inside;
      ++arrived;  // monotonic, so late wakers still see the rendezvous
      max_inside = std::max(max_inside, inside);
      cv.notify_all();
      // Bounded wait so a regression shows up as a failed expectation, not a
      // hung test binary.
      cv.wait_for(lk, std::chrono::milliseconds(500), [&] { return arrived >= 2; });
      max_inside = std::max(max_inside, inside);
      --inside;
    }
    return std::vector<vp::Viewport>(static_cast<std::size_t>(horizon), history.back());
  }
  std::atomic<int> calls{0};
  std::mutex mu;
  std::condition_variable cv;
  int inside = 0;
  int arrived = 0;
  int max_inside = 0;
};

}  // namespace

TEST_F(Observability, CooldownFallbacksRunConcurrentlyOutsideTheGuardMutex) {
  ThreadGuard guard;
  nc::set_global_threads(4);
  serve::EngineConfig cfg;
  cfg.breaker_threshold = 1;  // one failure opens the breaker
  cfg.breaker_cooldown = 8;
  auto fallback = std::make_shared<RendezvousFallbackVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<AlwaysThrowVp>(), nullptr, nullptr, cfg, fallback);

  // Batch 1: the single failure trips the breaker (fallback call #1 does not
  // block).
  engine->submit(trivial_vp_request());
  engine->run();
  EXPECT_EQ(engine->counters().breaker_trips, 1);

  // Batch 2: both requests take the cooldown branch. Pre-fix, decide() held
  // g.mu while calling the fallback, serializing them — the rendezvous would
  // time out with max_inside == 1. Post-fix both sit in the fallback at once.
  engine->submit(trivial_vp_request());
  engine->submit(trivial_vp_request());
  const auto report = engine->run();
  EXPECT_EQ(report.fallback, 2u);
  EXPECT_EQ(fallback->max_inside, 2);
}

TEST_F(Observability, FailurePathFallbacksAlsoRunOutsideTheGuardMutex) {
  ThreadGuard guard;
  nc::set_global_threads(4);
  serve::EngineConfig cfg;
  cfg.breaker_threshold = 100;  // never trip: every request takes the failure path
  auto fallback = std::make_shared<RendezvousFallbackVp>();
  auto engine = std::make_shared<serve::InferenceEngine>(
      std::make_shared<AlwaysThrowVp>(), nullptr, nullptr, cfg, fallback);
  engine->submit(trivial_vp_request());
  engine->run();  // call #1, no block
  engine->submit(trivial_vp_request());
  engine->submit(trivial_vp_request());
  const auto report = engine->run();
  EXPECT_EQ(report.fallback, 2u);
  EXPECT_EQ(fallback->max_inside, 2);
  EXPECT_EQ(engine->counters().fail_exception, 3);
}

TEST_F(Observability, NonStdExceptionDegradesOneRequestInsteadOfPoisoningTheBatch) {
  ThreadGuard guard;
  nc::set_global_threads(2);
  auto engine = std::make_shared<serve::InferenceEngine>(std::make_shared<IntThrowVp>(), nullptr,
                                                         nullptr);
  engine->submit(trivial_vp_request());
  engine->submit(trivial_vp_request());
  serve::BatchReport report;
  // Pre-fix, `throw 42` escaped decide(), unwound through parallel_for and
  // re-threw out of run() — the whole batch died. Now it is one fallback.
  ASSERT_NO_THROW(report = engine->run());
  EXPECT_EQ(report.requests, 2u);
  EXPECT_EQ(report.fallback, 2u);
  EXPECT_EQ(engine->counters().fail_exception, 2);
  for (const auto& resp : engine->vp_responses()) {
    EXPECT_EQ(resp.meta.source, serve::Source::kFallback);
    EXPECT_EQ(resp.viewports.size(), 2u);  // fallback still answered
  }
}

// ---------- latency split (queue wait vs compute) ----------

TEST_F(Observability, ResponseMetaSplitsQueueWaitFromCompute) {
  ThreadGuard guard;
  nc::set_global_threads(4);
  auto engine = std::make_shared<serve::InferenceEngine>(
      nullptr, std::make_shared<netllm::baselines::Bba>(), nullptr);
  constexpr int kReqs = 6;
  for (int i = 0; i < kReqs; ++i) engine->submit(serve::AbrRequest{abr_observation()});
  const auto report = engine->run();
  ASSERT_EQ(report.requests, static_cast<std::size_t>(kReqs));
  for (const auto& resp : engine->abr_responses()) {
    // latency = wait-for-the-policy-mutex + guarded decision. The budget
    // applies to compute only, so the split must reconstruct the total.
    EXPECT_GE(resp.meta.queue_wait_ms, 0.0);
    EXPECT_GE(resp.meta.compute_ms, 0.0);
    EXPECT_GE(resp.meta.latency_ms, resp.meta.compute_ms);
    EXPECT_GE(resp.meta.latency_ms + 1e-6,
              resp.meta.queue_wait_ms);  // total covers the wait share
  }
  // Element-wise latency >= compute implies the same for the percentiles.
  EXPECT_GE(report.p50_ms, report.compute_p50_ms);
  EXPECT_GE(report.p99_ms, report.compute_p99_ms);
  EXPECT_GE(report.wait_p99_ms, report.wait_p50_ms);
  EXPECT_EQ(nm::histogram("serve.abr.queue_wait_ms").count(), kReqs);
  EXPECT_EQ(nm::histogram("serve.abr.compute_ms").count(), kReqs);
}
