// Fault-tolerant sharded tensor-parallel serving suite (ctest -L shard),
// DESIGN.md §14.
//
// Pinned claims:
//   - shard_cols is a balanced exact partition of the output columns,
//   - the frame codec round-trips, and every seeded corruption / truncation /
//     torn-frame variant raises the named net::BadFrame (or net::Closed on a
//     clean boundary EOF) — never UB, never a hang,
//   - sharded decode is bitwise-equal to single-process at shard counts
//     1/2/4, at any NETLLM_THREADS,
//   - killing a worker mid-batch (the worker.crash fault site -> real
//     SIGKILL) escapes zero exceptions: the in-flight requests resolve as
//     Source::kShed, health/breaker stay untouched, and primary serving
//     resumes bitwise after the heartbeat respawns the worker,
//   - a SIGKILL between batches degrades the next drain the same way while
//     ABR traffic on the same engine is unaffected,
//   - a net.send/net.recv fault storm yields valid responses only (llm or
//     shed) and exports fault.net.* counters,
//   - a requested stop sheds the drain and tears the fleet down cleanly,
//   - a missing worker executable is a named construction error.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/abr/rule_based.hpp"
#include "core/fault.hpp"
#include "core/metrics.hpp"
#include "core/rng.hpp"
#include "core/signal.hpp"
#include "core/threadpool.hpp"
#include "envs/abr/policy.hpp"
#include "llm/minigpt.hpp"
#include "llm/tokenizer.hpp"
#include "net/frame.hpp"
#include "net/socket.hpp"
#include "netllm/serve.hpp"
#include "netllm/shard.hpp"
#include "netllm/vp_adapter.hpp"

namespace abr = netllm::abr;
namespace ad = netllm::adapt;
namespace llm = netllm::llm;
namespace nc = netllm::core;
namespace nm = netllm::core::metrics;
namespace net = netllm::net;
namespace serve = netllm::serve;
namespace shard = netllm::shard;
namespace vp = netllm::vp;
using netllm::core::Rng;
using netllm::tensor::Tensor;

#ifndef NETLLM_SHARD_WORKER_EXE
#define NETLLM_SHARD_WORKER_EXE "shard_worker"
#endif

namespace {

class Shard : public ::testing::Test {
 protected:
  void SetUp() override {
    nm::set_enabled(true);
    nm::reset();
    netllm::core::fault::disarm_all();
    nc::clear_stop();
  }
  void TearDown() override {
    netllm::core::fault::disarm_all();
    nc::clear_stop();
    nm::reset();
    nc::set_global_threads(0);
  }
};

llm::MiniGptConfig tiny_config() {
  llm::MiniGptConfig cfg;
  cfg.vocab = llm::Tokenizer().vocab_size();
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = 112;
  return cfg;
}

std::shared_ptr<llm::MiniGpt> tiny_llm(std::uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<llm::MiniGpt>(tiny_config(), rng);
}

std::shared_ptr<ad::VpAdapter> vp_adapter(std::uint64_t seed = 1) {
  ad::VpAdapterConfig cfg;
  cfg.lora_rank = 2;
  cfg.lora_alpha = 4.0f;
  Rng rng(seed);
  return std::make_shared<ad::VpAdapter>(tiny_llm(seed), cfg, rng);
}

std::vector<vp::VpSample> vp_samples(int n) {
  auto setting = vp::vp_default_train();
  setting.num_traces = 1;
  return vp::build_dataset(setting, n);
}

serve::EngineConfig sharded_config(int shards) {
  serve::EngineConfig cfg;
  cfg.shards = shards;
  cfg.shard_worker_exe = NETLLM_SHARD_WORKER_EXE;
  cfg.shard_backoff_ms = 5.0;  // fast rejoin for the recovery tests
  return cfg;
}

void expect_same_rollout(const std::vector<vp::Viewport>& a, const std::vector<vp::Viewport>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].roll, b[j].roll) << "step " << j;
    EXPECT_EQ(a[j].pitch, b[j].pitch) << "step " << j;
    EXPECT_EQ(a[j].yaw, b[j].yaw) << "step " << j;
  }
}

/// Drive run() until a freshly submitted request is served by the primary
/// again (heartbeat rejoin), bounded; returns the recovered response.
serve::VpResponse serve_until_llm(serve::InferenceEngine& engine, const vp::VpSample& s,
                                  int horizon, int max_rounds = 400) {
  for (int round = 0; round < max_rounds; ++round) {
    const auto t = engine.submit(serve::VpRequest{s.history, s.saliency, horizon});
    engine.run();
    const auto resp = engine.vp_response(t);
    if (resp.meta.source == serve::Source::kLlm) return resp;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "primary serving did not recover within the bound";
  return {};
}

}  // namespace

// ---------- column partition ----------

TEST_F(Shard, ShardColsIsABalancedExactPartition) {
  for (std::int64_t out : {1, 2, 3, 16, 31, 32, 160}) {
    for (int workers : {1, 2, 3, 4, 7}) {
      std::vector<int> covered(static_cast<std::size_t>(out), 0);
      std::int64_t min_cols = out, max_cols = 0;
      for (int r = 0; r < workers; ++r) {
        const auto [c0, cols] = shard::shard_cols(out, workers, r);
        EXPECT_GE(cols, 0);
        min_cols = std::min(min_cols, cols);
        max_cols = std::max(max_cols, cols);
        for (std::int64_t c = c0; c < c0 + cols; ++c) ++covered[static_cast<std::size_t>(c)];
      }
      for (auto c : covered) EXPECT_EQ(c, 1) << "out=" << out << " workers=" << workers;
      EXPECT_LE(max_cols - min_cols, 1);  // balanced
    }
  }
  EXPECT_THROW(shard::shard_cols(8, 2, 2), shard::Error);
  EXPECT_THROW(shard::shard_cols(8, 0, 0), shard::Error);
}

// ---------- frame codec ----------

TEST_F(Shard, WriterReaderRoundTripAndBoundsChecks) {
  net::Writer w;
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f32(-1.5f);
  const std::vector<float> xs = {0.0f, 1.0f, -2.25f};
  w.f32s(xs);

  net::Reader r(w.bytes);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f32(), -1.5f);
  std::vector<float> back(3);
  r.f32s(back);
  EXPECT_EQ(back, xs);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_end());

  // Overrun and trailing bytes are the named BadFrame, not UB.
  net::Reader r2(w.bytes);
  r2.u16();
  EXPECT_THROW(r2.expect_end(), net::BadFrame);
  net::Reader r3(std::span<const std::uint8_t>(w.bytes.data(), 3));
  r3.u16();
  EXPECT_THROW(r3.u16(), net::BadFrame);
  EXPECT_THROW(r3.u64(), net::BadFrame);
}

TEST_F(Shard, FrameEncodeDecodeRoundTrip) {
  for (auto type : {net::FrameType::kHello, net::FrameType::kMatmul, net::FrameType::kShutdown}) {
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < 37; ++i) payload.push_back(static_cast<std::uint8_t>(i * 7));
    const auto wire = net::encode_frame(type, payload);
    EXPECT_EQ(wire.size(), net::kFrameHeaderSize + payload.size());
    const auto frame = net::decode_frame(wire);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
  // Empty payload round-trips too (Shutdown, Ready ack).
  const auto wire = net::encode_frame(net::FrameType::kReady, {});
  EXPECT_EQ(net::decode_frame(wire).payload.size(), 0u);
}

TEST_F(Shard, SeededCorruptionFuzzAlwaysRaisesBadFrame) {
  Rng rng(0xfacef00d);
  std::vector<std::uint8_t> payload(256);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto wire = net::encode_frame(net::FrameType::kMatmul, payload);
  // Any single-byte corruption must be detected: header fields are validated
  // and the payload is CRC-covered. 500 seeded flips, every region.
  for (int trial = 0; trial < 500; ++trial) {
    auto bad = wire;
    const auto pos = static_cast<std::size_t>(
        rng.randint(0, static_cast<std::int64_t>(bad.size()) - 1));
    const auto flip = static_cast<std::uint8_t>(rng.randint(1, 255));
    bad[pos] ^= flip;
    EXPECT_THROW(net::decode_frame(bad), net::BadFrame)
        << "undetected corruption at byte " << pos;
  }
  // Declared payload length exceeding the cap must be rejected before any
  // allocation of that size.
  auto huge = wire;
  huge[8] = 0xff; huge[9] = 0xff; huge[10] = 0xff; huge[11] = 0x7f;
  EXPECT_THROW(net::decode_frame(huge), net::BadFrame);
}

TEST_F(Shard, SeededTruncationFuzzAlwaysRaisesBadFrame) {
  Rng rng(0x7b0b1e5);
  std::vector<std::uint8_t> payload(64);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next_u64());
  const auto wire = net::encode_frame(net::FrameType::kWeights, payload);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(net::decode_frame(std::span<const std::uint8_t>(wire.data(), len)),
                 net::BadFrame)
        << "undetected truncation to " << len;
  }
  // Trailing garbage after a complete frame is equally a BadFrame.
  auto extended = wire;
  extended.push_back(0x5a);
  EXPECT_THROW(net::decode_frame(extended), net::BadFrame);
}

TEST_F(Shard, TornFrameOverSocketIsBadFrameCleanEofIsClosed) {
  net::Listener listener;
  const auto dl = net::deadline_after_ms(5000.0);

  // Clean EOF on the frame boundary -> Closed (peer gone between frames).
  {
    std::thread peer([&] {
      net::Socket c = net::connect_local(listener.port(), dl);
      c.close();
    });
    net::Socket s = listener.accept(dl);
    EXPECT_THROW(net::read_frame(s, dl), net::Closed);
    peer.join();
  }
  // EOF inside the header and inside the payload -> torn frame (BadFrame).
  const auto wire = net::encode_frame(net::FrameType::kPing,
                                      std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8});
  for (const std::size_t cut : {std::size_t{5}, net::kFrameHeaderSize + 3}) {
    std::thread peer([&] {
      net::Socket c = net::connect_local(listener.port(), dl);
      c.send_all(wire.data(), cut, dl);
      c.close();
    });
    net::Socket s = listener.accept(dl);
    EXPECT_THROW(net::read_frame(s, dl), net::BadFrame) << "cut at " << cut;
    peer.join();
  }
}

// ---------- bitwise equality ----------

TEST_F(Shard, ShardGroupMatmulIsBitwiseTheLocalMatmul) {
  auto model = tiny_llm(21);
  shard::ShardConfig scfg;
  scfg.workers = 3;
  scfg.worker_exe = NETLLM_SHARD_WORKER_EXE;
  shard::ShardGroup group(model, scfg);
  EXPECT_EQ(group.alive_count(), 3);

  const auto linears = model->backbone_linears();
  ASSERT_EQ(group.ops(), linears.size());
  Rng rng(77);
  for (std::size_t op = 0; op < linears.size(); ++op) {
    const auto in = linears[op]->in_features();
    const auto x = Tensor::randn({5, in}, rng, 1.0f);
    const auto remote = group.matmul(static_cast<std::uint32_t>(op), x);
    // The hook is attached, so compute the local product on raw weights.
    const auto local = netllm::tensor::matmul(x, linears[op]->weight());
    ASSERT_EQ(remote.numel(), local.numel());
    for (std::int64_t i = 0; i < local.numel(); ++i) {
      ASSERT_EQ(remote.data()[static_cast<std::size_t>(i)],
                local.data()[static_cast<std::size_t>(i)])
          << "op " << op << " element " << i;
    }
  }
}

TEST_F(Shard, ShardedDecodeBitwiseEqualsSingleProcessAtShardCounts124) {
  const auto samples = vp_samples(3);
  const int horizon = 4;

  // Single-process baseline: same seed, no shards.
  std::vector<std::vector<vp::Viewport>> baseline;
  {
    auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(11), nullptr, nullptr,
                                                           serve::EngineConfig{});
    for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
    const auto report = engine->run();
    EXPECT_EQ(report.llm, samples.size());
    for (const auto& r : engine->vp_responses()) baseline.push_back(r.viewports);
  }

  for (int shards : {1, 2, 4}) {
    auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(11), nullptr, nullptr,
                                                           sharded_config(shards));
    ASSERT_NE(engine->shard_group(), nullptr);
    EXPECT_EQ(engine->shard_group()->alive_count(), shards);
    for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
    const auto report = engine->run();
    EXPECT_EQ(report.llm, samples.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      expect_same_rollout(engine->vp_responses()[i].viewports, baseline[i]);
    }
  }
}

TEST_F(Shard, ShardedDecodeBitwiseStableAcrossThreadCounts) {
  const auto samples = vp_samples(2);
  const int horizon = 3;
  std::vector<std::vector<vp::Viewport>> first;
  for (int threads : {1, 4}) {
    nc::set_global_threads(threads);
    auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(13), nullptr, nullptr,
                                                           sharded_config(2));
    for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
    engine->run();
    if (first.empty()) {
      for (const auto& r : engine->vp_responses()) first.push_back(r.viewports);
    } else {
      for (std::size_t i = 0; i < samples.size(); ++i) {
        expect_same_rollout(engine->vp_responses()[i].viewports, first[i]);
      }
    }
  }
}

// ---------- worker death: degradation and rejoin ----------

TEST_F(Shard, WorkerCrashMidBatchShedsThenRecoversBitwise) {
  const auto samples = vp_samples(4);
  const int horizon = 4;

  // Baseline answer for the recovery check.
  auto baseline_engine = std::make_shared<serve::InferenceEngine>(vp_adapter(17), nullptr,
                                                                  nullptr, serve::EngineConfig{});
  baseline_engine->submit(serve::VpRequest{samples[0].history, samples[0].saliency, horizon});
  baseline_engine->run();
  const auto baseline = baseline_engine->vp_responses()[0].viewports;

  auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(17), nullptr, nullptr,
                                                         sharded_config(2));
  ASSERT_EQ(engine->shard_group()->alive_count(), 2);

  // Fire worker.crash mid-batch: the 40th backbone matmul RPC SIGKILLs the
  // lowest-ranked alive worker while requests are in flight.
  netllm::core::fault::FaultPlan plan;
  plan.kind = netllm::core::fault::FaultKind::Throw;
  plan.after = 40;
  plan.times = 1;
  netllm::core::fault::arm("worker.crash", plan);

  for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
  serve::BatchReport report;
  ASSERT_NO_THROW(report = engine->run());  // zero escaped exceptions
  netllm::core::fault::disarm_all();

  EXPECT_EQ(report.requests, samples.size());
  EXPECT_GE(report.shed, 1u);  // the mid-flight requests degraded
  EXPECT_EQ(report.fallback, 0u);
  EXPECT_EQ(engine->shard_group()->alive_count(), 1);
  // Shedding is load, not failure: no breaker trip, health stays Healthy.
  EXPECT_EQ(engine->vp_health(), ad::Health::kHealthy);
  EXPECT_EQ(engine->counters().breaker_trips, 0);
  EXPECT_GE(nm::counter("shard.worker.down").value(), 1);

  // The heartbeat respawns the worker after its backoff; primary serving
  // resumes and the answers are bitwise the single-process baseline again.
  const auto recovered = serve_until_llm(*engine, samples[0], horizon);
  EXPECT_EQ(engine->shard_group()->alive_count(), 2);
  EXPECT_GE(nm::counter("shard.worker.rejoin").value(), 1);
  expect_same_rollout(recovered.viewports, baseline);
}

TEST_F(Shard, SigkillBetweenBatchesShedsVpWhileAbrIsUnaffected) {
  const auto samples = vp_samples(2);
  const int horizon = 3;
  auto engine = std::make_shared<serve::InferenceEngine>(
      vp_adapter(19), std::make_shared<netllm::baselines::Bba>(), nullptr, sharded_config(2));
  ASSERT_EQ(engine->shard_group()->alive_count(), 2);

  // Kill a worker with a real signal, outside any drain.
  const pid_t victim = engine->shard_group()->worker_pid(1);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  abr::Observation obs;
  obs.num_levels = 4;
  obs.buffer_s = 8.0;
  for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, horizon});
  const auto abr_ticket = engine->submit(serve::AbrRequest{obs});
  serve::BatchReport report;
  ASSERT_NO_THROW(report = engine->run());

  // Every VP request resolved (shed or llm — the heartbeat may detect the
  // death before or during the drain), none escaped, and the ABR request on
  // the same engine was served normally.
  EXPECT_EQ(report.requests, samples.size() + 1);
  EXPECT_EQ(report.fallback, 0u);
  const auto& abr_resp = engine->abr_response(abr_ticket);
  EXPECT_GE(abr_resp.level, 0);
  EXPECT_LT(abr_resp.level, obs.num_levels);
  EXPECT_NE(abr_resp.meta.source, serve::Source::kShed);

  // Recovery as before.
  const auto recovered = serve_until_llm(*engine, samples[0], horizon);
  EXPECT_EQ(recovered.meta.source, serve::Source::kLlm);
  EXPECT_EQ(engine->shard_group()->alive_count(), 2);
}

TEST_F(Shard, NetFaultStormNeverEscapesAndExportsCounters) {
  const auto samples = vp_samples(3);
  auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(23), nullptr, nullptr,
                                                         sharded_config(2));
  netllm::core::fault::StormPlan storm;
  storm.seed = 42;
  storm.horizon = 256;
  storm.sites.push_back({"net.send", netllm::core::fault::FaultKind::Throw, 0.05, 2, 0.0});
  storm.sites.push_back({"net.recv", netllm::core::fault::FaultKind::Throw, 0.05, 1, 0.0});
  netllm::core::fault::arm_storm(storm);

  for (int round = 0; round < 4; ++round) {
    for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, 3});
    serve::BatchReport report;
    ASSERT_NO_THROW(report = engine->run());
    // Storm failures shed; successes serve — nothing else.
    EXPECT_EQ(report.requests, report.llm + report.shed);
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  // The armed sites export their activity into the metrics registry
  // (fault.net.*.hits / .fired land in metrics.json via metrics::to_json).
  EXPECT_GT(nm::counter("fault.net.send.hits").value(), 0);
  EXPECT_GT(nm::counter("fault.net.recv.hits").value(), 0);
  EXPECT_GT(netllm::core::fault::fired("net.send") + netllm::core::fault::fired("net.recv"), 0);
  netllm::core::fault::disarm_all();

  // After the storm passes the fleet heals (workers killed by failed RPCs
  // rejoin) and the primary serves again.
  const auto recovered = serve_until_llm(*engine, samples[0], 3);
  EXPECT_EQ(recovered.meta.source, serve::Source::kLlm);
}

TEST_F(Shard, StopDrainsViaFallbackAndTearsTheFleetDownCleanly) {
  const auto samples = vp_samples(3);
  std::vector<pid_t> pids;
  {
    auto engine = std::make_shared<serve::InferenceEngine>(vp_adapter(29), nullptr, nullptr,
                                                           sharded_config(2));
    for (int r = 0; r < 2; ++r) pids.push_back(engine->shard_group()->worker_pid(r));
    for (const auto& s : samples) engine->submit(serve::VpRequest{s.history, s.saliency, 3});
    nc::request_stop();
    serve::BatchReport report;
    ASSERT_NO_THROW(report = engine->run());
    EXPECT_TRUE(report.drained_on_stop);
    EXPECT_EQ(report.shed, samples.size());  // drained via the fallback
    EXPECT_THROW(engine->submit(serve::VpRequest{samples[0].history, samples[0].saliency, 3}),
                 serve::Overloaded);
  }
  // Engine destruction shut the fleet down: every worker pid is gone (reaped
  // by ShardGroup::shutdown, so a kill(0) probe must fail with ESRCH).
  for (const pid_t pid : pids) {
    ASSERT_GT(pid, 0);
    EXPECT_NE(::kill(pid, 0), 0) << "worker " << pid << " still running";
  }
  nc::clear_stop();
}

TEST_F(Shard, MissingWorkerExecutableIsANamedConstructionError) {
  serve::EngineConfig cfg = sharded_config(2);
  cfg.shard_worker_exe = "/nonexistent/netllm_shard_worker";
  EXPECT_THROW(serve::InferenceEngine(vp_adapter(31), nullptr, nullptr, cfg), shard::Error);
}
