// Tests for NN modules: shape contracts, parameter registry / freezing,
// LoRA semantics, and small end-to-end learning checks per architecture.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "nn/graph.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "nn/transformer.hpp"
#include "nn/vit.hpp"
#include "tensor/optim.hpp"

namespace nt = netllm::tensor;
namespace nn = netllm::nn;
using netllm::core::Rng;

TEST(Linear, ForwardShapeAndBias) {
  Rng rng(1);
  nn::Linear fc(3, 5, rng);
  auto y = fc.forward(nt::Tensor::zeros({2, 3}));
  ASSERT_EQ(y.shape(), (nt::Shape{2, 5}));
  for (float v : y.data()) EXPECT_EQ(v, 0.0f);  // zero input + zero bias
}

TEST(Linear, ParameterRegistry) {
  Rng rng(2);
  nn::Linear fc(4, 2, rng);
  auto named = fc.named_parameters("fc.");
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "fc.weight");
  EXPECT_EQ(named[1].first, "fc.bias");
  EXPECT_EQ(fc.param_count(), 4 * 2 + 2);
  EXPECT_EQ(fc.trainable_param_count(), fc.param_count());
  fc.freeze();
  EXPECT_EQ(fc.trainable_param_count(), 0);
  fc.unfreeze();
  EXPECT_EQ(fc.trainable_param_count(), fc.param_count());
}

TEST(LoRALinear, StartsAtBaseFunction) {
  Rng rng(3);
  auto base = std::make_shared<nn::Linear>(4, 4, rng);
  nn::LoRALinear lora(base, 2, 4.0f, rng);
  auto x = nt::Tensor::randn({3, 4}, rng, 1.0f);
  auto y_base = base->forward(x);
  auto y_lora = lora.forward(x);
  for (int i = 0; i < 12; ++i) EXPECT_NEAR(y_lora.at(i), y_base.at(i), 1e-6f);
}

TEST(LoRALinear, OnlyLowRankMatricesTrainWhenBaseFrozen) {
  Rng rng(4);
  auto base = std::make_shared<nn::Linear>(4, 4, rng);
  base->freeze();
  nn::LoRALinear lora(base, 2, 4.0f, rng);
  EXPECT_EQ(lora.trainable_param_count(), 4 * 2 + 2 * 4);
  EXPECT_EQ(lora.param_count(), 4 * 4 + 4 + 4 * 2 + 2 * 4);

  // Training the LoRA matrices can still change the function.
  auto x = nt::Tensor::randn({8, 4}, rng, 1.0f);
  auto target = nt::Tensor::randn({8, 4}, rng, 1.0f);
  nt::Adam opt(lora.trainable_parameters(), 0.05f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 200; ++step) {
    opt.zero_grad();
    auto loss = nt::mse_loss(lora.forward(x), target);
    if (step == 0) first_loss = loss.item();
    last_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
  // Base weight unchanged.
  auto named = base->named_parameters();
  EXPECT_TRUE(named[0].second.grad().empty() ||
              std::all_of(named[0].second.grad().begin(), named[0].second.grad().end(),
                          [](float g) { return g == 0.0f; }));
}

TEST(Mlp, LearnsXor) {
  Rng rng(5);
  nn::Mlp mlp({2, 8, 1}, rng, nn::Activation::kTanh);
  auto x = nt::Tensor::from({0, 0, 0, 1, 1, 0, 1, 1}, {4, 2});
  auto y = nt::Tensor::from({0, 1, 1, 0}, {4, 1});
  nt::Adam opt(mlp.trainable_parameters(), 0.05f);
  for (int step = 0; step < 500; ++step) {
    opt.zero_grad();
    auto loss = nt::mse_loss(mlp.forward(x), y);
    loss.backward();
    opt.step();
  }
  auto pred = mlp.forward(x);
  EXPECT_LT(std::abs(pred.at(0) - 0.0f), 0.2f);
  EXPECT_LT(std::abs(pred.at(1) - 1.0f), 0.2f);
  EXPECT_LT(std::abs(pred.at(2) - 1.0f), 0.2f);
  EXPECT_LT(std::abs(pred.at(3) - 0.0f), 0.2f);
}

TEST(Conv1d, PreservesLengthWithSamePadding) {
  Rng rng(6);
  nn::Conv1d conv(2, 4, 3, rng);
  auto y = conv.forward(nt::Tensor::zeros({2, 10}));
  ASSERT_EQ(y.shape(), (nt::Shape{4, 10}));
}

TEST(MultiHeadAttention, OutputShapeAndCausality) {
  Rng rng(7);
  nn::MultiHeadAttention mha(8, 2, /*causal=*/true, rng);
  auto x = nt::Tensor::randn({5, 8}, rng, 1.0f);
  auto y1 = mha.forward(x);
  ASSERT_EQ(y1.shape(), (nt::Shape{5, 8}));

  // Causality: changing a later token must not change earlier outputs.
  auto x2v = std::vector<float>(x.data().begin(), x.data().end());
  for (int j = 0; j < 8; ++j) x2v[4 * 8 + j] += 5.0f;  // perturb last position
  auto y2 = mha.forward(nt::Tensor::from(std::move(x2v), {5, 8}));
  for (int i = 0; i < 4 * 8; ++i) EXPECT_NEAR(y1.at(i), y2.at(i), 1e-5f);
  // ...but it should change the final position.
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::abs(y1.at(4 * 8 + j) - y2.at(4 * 8 + j));
  EXPECT_GT(diff, 1e-3f);
}

TEST(MultiHeadAttention, NonCausalAttendsToFuture) {
  Rng rng(8);
  nn::MultiHeadAttention mha(8, 2, /*causal=*/false, rng);
  auto x = nt::Tensor::randn({4, 8}, rng, 1.0f);
  auto y1 = mha.forward(x);
  auto x2v = std::vector<float>(x.data().begin(), x.data().end());
  for (int j = 0; j < 8; ++j) x2v[3 * 8 + j] += 5.0f;
  auto y2 = mha.forward(nt::Tensor::from(std::move(x2v), {4, 8}));
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::abs(y1.at(j) - y2.at(j));
  EXPECT_GT(diff, 1e-4f);  // first position sees the change
}

TEST(MultiHeadAttention, RejectsIndivisibleHeads) {
  Rng rng(9);
  EXPECT_THROW(nn::MultiHeadAttention(10, 3, true, rng), std::invalid_argument);
}

TEST(TransformerBlock, ForwardShapeAndGradientFlow) {
  Rng rng(10);
  nn::TransformerBlock block(8, 2, 16, /*causal=*/true, rng);
  auto x = nt::Tensor::randn({6, 8}, rng, 1.0f);
  auto y = block.forward(x);
  ASSERT_EQ(y.shape(), (nt::Shape{6, 8}));
  auto loss = nt::mean_all(nt::mul(y, y));
  loss.backward();
  // Every trainable parameter should receive some gradient signal.
  int nonzero_params = 0;
  for (auto& p : block.trainable_parameters()) {
    bool any = false;
    for (float g : p.grad()) any |= (g != 0.0f);
    nonzero_params += any;
  }
  EXPECT_GT(nonzero_params, 10);
}

TEST(TransformerBlock, EnableLoraAddsTrainablesAndPreservesFunction) {
  Rng rng(11);
  nn::TransformerBlock block(8, 2, 16, true, rng);
  auto x = nt::Tensor::randn({4, 8}, rng, 1.0f);
  auto before = block.forward(x);
  block.freeze();
  auto lora = block.enable_lora(2, 4.0f, rng);
  EXPECT_EQ(lora.size(), 12u);  // 4 attention proj + 2 MLP, each (A, B)
  auto after = block.forward(x);
  for (int i = 0; i < 32; ++i) EXPECT_NEAR(before.at(i), after.at(i), 1e-6f);
  // Trainables are exactly the LoRA matrices (LayerNorms were frozen too).
  std::int64_t lora_count = 0;
  for (auto& t : lora) lora_count += t.numel();
  EXPECT_EQ(block.trainable_param_count(), lora_count);
}

TEST(Lstm, ShapesAndSequenceSensitivity) {
  Rng rng(12);
  nn::Lstm lstm(3, 6, rng);
  auto x = nt::Tensor::randn({5, 3}, rng, 1.0f);
  auto hs = lstm.forward(x);
  ASSERT_EQ(hs.shape(), (nt::Shape{5, 6}));
  auto last = lstm.last_hidden(x);
  ASSERT_EQ(last.shape(), (nt::Shape{1, 6}));
  for (int j = 0; j < 6; ++j) EXPECT_EQ(last.at(j), hs.at(4 * 6 + j));
}

TEST(Lstm, LearnsToSumSequence) {
  Rng rng(13);
  nn::Lstm lstm(1, 8, rng);
  nn::Linear head(8, 1, rng);
  std::vector<nt::Tensor> params = lstm.trainable_parameters();
  for (auto& p : head.trainable_parameters()) params.push_back(p);
  nt::Adam opt(params, 0.02f);
  Rng data_rng(99);
  float final_loss = 1e9f;
  for (int step = 0; step < 300; ++step) {
    std::vector<float> seq(4);
    float total = 0.0f;
    for (auto& v : seq) {
      v = static_cast<float>(data_rng.uniform(-1, 1));
      total += v;
    }
    opt.zero_grad();
    auto x = nt::Tensor::from(seq, {4, 1});
    auto pred = head.forward(lstm.last_hidden(x));
    auto loss = nt::mse_loss(pred, nt::Tensor::from({total}, {1, 1}));
    final_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(final_loss, 0.1f);
}

TEST(Graph, TopologicalOrderRespectsDependencies) {
  nn::DagTopology topo;
  topo.num_nodes = 4;
  topo.children = {{1, 2}, {3}, {3}, {}};  // 3 -> {1,2} -> 0
  auto order = nn::topological_order(topo);
  std::vector<int> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  EXPECT_LT(pos[3], pos[1]);
  EXPECT_LT(pos[3], pos[2]);
  EXPECT_LT(pos[1], pos[0]);
  EXPECT_LT(pos[2], pos[0]);
}

TEST(Graph, CycleDetection) {
  nn::DagTopology topo;
  topo.num_nodes = 2;
  topo.children = {{1}, {0}};
  EXPECT_THROW(nn::topological_order(topo), std::invalid_argument);
}

TEST(Graph, EncoderShapesAndMessageFlow) {
  Rng rng(14);
  nn::GraphEncoder enc(3, 8, rng);
  nn::DagTopology topo;
  topo.num_nodes = 3;
  topo.children = {{1, 2}, {}, {}};
  auto feats = nt::Tensor::randn({3, 3}, rng, 1.0f);
  auto out = enc.forward(feats, topo);
  ASSERT_EQ(out.node_embeddings.shape(), (nt::Shape{3, 8}));
  ASSERT_EQ(out.global_summary.shape(), (nt::Shape{1, 8}));

  // Perturbing a child's features must change the parent's embedding.
  auto f2 = std::vector<float>(feats.data().begin(), feats.data().end());
  f2[1 * 3 + 0] += 3.0f;
  auto out2 = enc.forward(nt::Tensor::from(std::move(f2), {3, 3}), topo);
  float diff = 0.0f;
  for (int j = 0; j < 8; ++j) diff += std::abs(out.node_embeddings.at(j) - out2.node_embeddings.at(j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(Graph, EncoderLearnsNodeProperty) {
  // Learn to score each node by (own feature + sum of children's features).
  Rng rng(15);
  nn::GraphEncoder enc(1, 8, rng);
  nn::Linear head(8, 1, rng);
  std::vector<nt::Tensor> params = enc.trainable_parameters();
  for (auto& p : head.trainable_parameters()) params.push_back(p);
  nt::Adam opt(params, 0.01f);
  nn::DagTopology topo;
  topo.num_nodes = 3;
  topo.children = {{1, 2}, {}, {}};
  Rng data_rng(42);
  float final_loss = 1e9f;
  for (int step = 0; step < 400; ++step) {
    std::vector<float> f(3);
    for (auto& v : f) v = static_cast<float>(data_rng.uniform(0, 1));
    const std::vector<float> target = {f[0] + f[1] + f[2], f[1], f[2]};
    opt.zero_grad();
    auto out = enc.forward(nt::Tensor::from(f, {3, 1}), topo);
    auto pred = head.forward(out.node_embeddings);
    auto loss = nt::mse_loss(pred, nt::Tensor::from(target, {3, 1}));
    final_loss = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(final_loss, 0.05f);
}

TEST(ViT, PatchAndPooledShapes) {
  Rng rng(16);
  nn::ViTConfig cfg;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  nn::ViTLite vit(cfg, rng);
  EXPECT_EQ(vit.num_patches(), 4);
  auto img = nt::Tensor::randn({8, 8}, rng, 1.0f);
  auto patches = vit.forward_patches(img);
  ASSERT_EQ(patches.shape(), (nt::Shape{4, 16}));
  auto pooled = vit.forward_pooled(img);
  ASSERT_EQ(pooled.shape(), (nt::Shape{1, 16}));
}

TEST(ViT, RejectsBadGeometry) {
  Rng rng(17);
  nn::ViTConfig cfg;
  cfg.image_size = 10;
  cfg.patch_size = 4;
  EXPECT_THROW(nn::ViTLite(cfg, rng), std::invalid_argument);
}

TEST(ViT, DistinguishesImages) {
  Rng rng(18);
  nn::ViTConfig cfg;
  cfg.image_size = 8;
  cfg.patch_size = 4;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  nn::ViTLite vit(cfg, rng);
  auto a = vit.forward_pooled(nt::Tensor::zeros({8, 8}));
  auto b = vit.forward_pooled(nt::Tensor::full({8, 8}, 1.0f));
  float diff = 0.0f;
  for (int j = 0; j < 16; ++j) diff += std::abs(a.at(j) - b.at(j));
  EXPECT_GT(diff, 1e-4f);
}

TEST(Module, SaveLoadRoundTripThroughRegistry) {
  Rng rng(19);
  nn::Mlp a({3, 5, 2}, rng);
  nn::Mlp b({3, 5, 2}, rng);
  const auto path = std::string("/tmp/netllm_mlp_roundtrip.bin");
  a.save(path);
  b.load(path);
  auto x = nt::Tensor::randn({4, 3}, rng, 1.0f);
  auto ya = a.forward(x);
  auto yb = b.forward(x);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}
