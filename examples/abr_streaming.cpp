// Scenario: stream a 48-chunk video over a fluctuating cellular link and
// watch three controllers react chunk by chunk — rule-based BBA, MPC, and a
// NetLLM-adapted LLM (trained on a quick experience pool). Prints a
// per-chunk timeline (bandwidth, chosen rung, buffer, rebuffering) plus the
// QoE ledger, i.e. the view a streaming engineer would debug with.
#include <iomanip>
#include <iostream>

#include "baselines/abr/rule_based.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"

using namespace netllm;

namespace {

void stream_with(abr::AbrPolicy& policy, const abr::VideoModel& video,
                 const abr::BandwidthTrace& trace, bool print_timeline) {
  abr::StreamingSession session(video, trace);
  policy.begin_session();
  if (print_timeline) {
    std::cout << "chunk  bw(Mbps)  rung  kbps  buffer(s)  rebuffer(s)\n";
  }
  int prev = -1;
  double clock = 0.0;
  while (!session.done()) {
    const int chunk = session.next_chunk_index();
    const auto obs = session.observe();
    const int level = policy.choose_level(obs);
    const auto r = session.step(level);
    const double prev_kbps = prev < 0 ? video.bitrate_kbps(level) : video.bitrate_kbps(prev);
    policy.observe_result(
        r, abr::qoe_chunk({}, video.bitrate_kbps(level), prev_kbps, r.rebuffer_s));
    clock += r.delay_s;
    if (print_timeline && chunk % 4 == 0) {
      std::cout << std::setw(5) << chunk << "  " << std::setw(8) << std::fixed
                << std::setprecision(2) << trace.bw_at(clock) << "  " << std::setw(4) << level
                << "  " << std::setw(4) << static_cast<int>(video.bitrate_kbps(level)) << "  "
                << std::setw(9) << r.buffer_s << "  " << std::setw(11) << r.rebuffer_s << "\n";
    }
    prev = level;
  }
  std::cout << policy.name() << ": mean QoE " << std::setprecision(3) << session.mean_qoe()
            << "  (bitrate " << session.total_bitrate_mbps() / session.chunks_served()
            << " Mbps/chunk, rebuffer " << session.total_rebuffer_s() << " s total, "
            << "switch cost " << session.total_smoothness_mbps() << " Mbps)\n\n";
}

}  // namespace

int main() {
  const auto video = abr::VideoModel::envivio(5);
  const auto traces = abr::generate_traces(abr::TracePreset::kCellular, 1, 42);
  const auto& trace = traces.front();
  std::cout << "cellular trace '" << trace.name << "': mean " << trace.mean_mbps()
            << " Mbps over " << trace.duration_s() << " s\n\n";

  baselines::Bba bba;
  baselines::Mpc mpc;
  stream_with(bba, video, trace, /*print_timeline=*/true);
  stream_with(mpc, video, trace, /*print_timeline=*/false);

  // A quickly-adapted NetLLM policy: small backbone, MPC-collected pool
  // over cellular-like training traces (train/test traces differ).
  auto llm = llm::build_pretrained("opt-lite-1.3b", 7);
  const auto train_traces = abr::generate_traces(abr::TracePreset::kCellular, 12, 7);
  baselines::Mpc collector;
  auto pool = adapt::collect_abr_experience(collector, video, train_traces, 2, 0.1, 3);
  core::Rng rng(4);
  adapt::api::AdaptOptions opts;
  opts.steps = 700;
  auto netllm_policy = adapt::api::Adapt(llm, pool, adapt::AbrAdapterConfig{}, opts, rng);
  stream_with(*netllm_policy, video, trace, /*print_timeline=*/true);

  // Production-style serving: the same policy behind the robustness layer —
  // output validation, latency budget, BBA fallback, circuit breaker. On a
  // healthy model every decision stays on the LLM path.
  auto guarded = adapt::api::Guard(netllm_policy, {.latency_budget_ms = 250.0});
  stream_with(*guarded, video, trace, /*print_timeline=*/false);
  const auto& gc = guarded->counters();
  std::cout << "guarded serving: " << gc.llm_ok << " LLM decisions, " << gc.fallback
            << " fallback (exception " << gc.fail_exception << ", invalid " << gc.fail_invalid
            << ", latency " << gc.fail_latency << ", breaker trips " << gc.breaker_trips
            << ")\n\n";
  std::cout << "(This is a workflow demo on one harsh cellular trace; rule-based\n"
               " conservatism wins single traces like this. The figure benches train\n"
               " the full recipe on llama2-lite and evaluate across trace sets.)\n";
  return 0;
}
