// Scenario: cluster job scheduling. Generate a TPC-H-like workload, collect
// scheduling experience with Spark-style FIFO/Fair, adapt an LLM scheduler
// offline (DD-LRNA), then compare job-completion-time distributions — the
// operator's view of whether a new scheduler is worth deploying.
#include <iomanip>
#include <iostream>

#include "baselines/cjs/rule_based.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"

using namespace netllm;

namespace {

void report(const std::string& name, const std::vector<double>& jcts) {
  std::cout << std::setw(10) << name << ": mean " << std::fixed << std::setprecision(1)
            << core::mean(jcts) << " s,  median " << core::percentile(jcts, 50) << " s,  p90 "
            << core::percentile(jcts, 90) << " s\n";
}

}  // namespace

int main() {
  // A small workload instance from the Table 4 default distribution.
  auto setting = cjs::cjs_default_test();
  setting.scale = 0.12;  // 24 jobs on 6 executors — demo-sized
  const auto jobs = cjs::generate_jobs(setting);
  double total_work = 0.0;
  for (const auto& j : jobs) total_work += j.total_work_s();
  std::cout << "workload: " << jobs.size() << " DAG jobs, "
            << setting.scaled_executors() << " executors, " << std::fixed
            << std::setprecision(0) << total_work << " task-seconds of work\n\n";

  baselines::FifoScheduler fifo;
  baselines::FairScheduler fair;
  report("FIFO", cjs::run_workload(setting, fifo).jct_s);
  report("Fair", cjs::run_workload(setting, fair).jct_s);

  // Offline adaptation from FIFO+Fair experience.
  auto pool = adapt::api::RL_Collect(fifo, setting, /*episodes=*/6, 3);
  for (auto& traj : adapt::api::RL_Collect(fair, setting, 6, 4)) pool.push_back(std::move(traj));
  auto llm = llm::build_pretrained("opt-lite-1.3b", 7);
  core::Rng rng(5);
  adapt::api::AdaptOptions opts;
  opts.steps = 150;
  adapt::CjsAdapterConfig cfg;
  cfg.context_window = 10;  // demo-sized context
  auto scheduler = adapt::api::Adapt(llm, pool, cfg, opts, rng);
  report("NetLLM", cjs::run_workload(setting, *scheduler).jct_s);

  std::cout << "\n(The figure benches train longer, on the pre-trained llama2-lite\n"
            << " backbone, with Decima in the experience pool — see bench/.)\n";
  return 0;
}
