// Quickstart: adapt an LLM for adaptive bitrate streaming in ~30 lines,
// using the paper's three integration APIs (Fig. 9):
//
//   RL_Collect — build an experience pool with an existing policy (BBA),
//   Adapt      — fine-tune the frozen LLM (encoder + head + LoRA) on it,
//   Test       — evaluate the adapted policy on a Table 3 setting.
//
// This demo uses a small fresh MiniGPT so it runs in seconds; the figure
// benches use the pre-trained "llama2-lite" backbone from the model zoo.
#include <iostream>

#include "baselines/abr/rule_based.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"

int main() {
  using namespace netllm;

  // 1. A foundation model. `build_pretrained` pre-trains (or cache-loads)
  //    a MiniGPT on the synthetic pattern corpus.
  auto llm = llm::build_pretrained("opt-lite-1.3b", /*seed=*/7);
  std::cout << "LLM '" << llm->config().name << "' ready: " << llm->param_count()
            << " parameters\n";

  // 2. RL_Collect: gather an experience pool with an existing algorithm.
  auto setting = abr::abr_default_train();
  setting.num_traces = 12;  // keep the demo quick
  baselines::Bba collector;
  const auto pool = adapt::api::RL_Collect(collector, setting, /*epochs=*/1,
                                           /*epsilon=*/0.15, /*seed=*/1);
  std::cout << "collected " << pool.size() << " trajectories ("
            << pool.front().size() << " chunks each)\n";

  // 3. Adapt: DD-LRNA offline fine-tuning — the backbone stays frozen, only
  //    the multimodal encoder, the bitrate head and the LoRA matrices train.
  core::Rng rng(2);
  adapt::AbrAdapterConfig cfg;
  adapt::api::AdaptOptions opts;
  opts.steps = 150;
  auto policy = adapt::api::Adapt(llm, pool, cfg, opts, rng);
  std::cout << "adapted: " << policy->trainable_param_count() << " trainable / "
            << llm->param_count() + policy->param_count() << " total parameters\n";

  // 4. Test: evaluate on the default Table 3 test environments.
  auto test_setting = abr::abr_default_test();
  test_setting.num_traces = 12;
  baselines::Bba bba;
  std::cout << "mean QoE  NetLLM: " << adapt::api::Test(*policy, test_setting)
            << "   BBA: " << adapt::api::Test(bba, test_setting) << "\n";
  return 0;
}
