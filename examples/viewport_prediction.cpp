// Scenario: immersive-video viewport prediction. Adapt an LLM on synthetic
// head-motion traces (SL pipeline, Eq. 1), then compare its 4-second
// look-ahead against linear regression on a held-out viewer — printing the
// predicted vs actual yaw trajectory a streaming system would use to decide
// which tiles to fetch in high quality.
#include <iomanip>
#include <iostream>

#include "baselines/vp/rule_based.hpp"
#include "llm/zoo.hpp"
#include "netllm/api.hpp"

using namespace netllm;

int main() {
  // Train on the default Table 2 setting (Jin2022-like, hw=2 s, pw=4 s).
  auto train_setting = vp::vp_default_train();
  train_setting.num_traces = 12;
  const auto train_data = vp::build_dataset(train_setting, 600);
  std::cout << "training windows: " << train_data.size() << " (hw="
            << train_setting.hw_s << "s, pw=" << train_setting.pw_s << "s @5Hz)\n";

  auto llm = llm::build_pretrained("opt-lite-1.3b", 7);
  core::Rng rng(2);
  adapt::api::AdaptOptions opts;
  opts.steps = 1400;
  adapt::VpAdapterConfig cfg;
  cfg.lora_rank = 8;  // the demo backbone is narrow; give LoRA more capacity
  cfg.lora_alpha = 16.0f;
  auto predictor = adapt::api::Adapt(llm, train_data, cfg, opts, rng);

  // Held-out viewer.
  auto test_setting = vp::vp_default_test();
  test_setting.num_traces = 1;
  const auto test_data = vp::build_dataset(test_setting, 40);
  const auto& sample = test_data[test_data.size() / 2];

  baselines::LinearRegressionVp lr;
  const auto horizon = static_cast<int>(sample.future.size());
  const auto netllm_pred = predictor->predict(sample.history, sample.saliency, horizon);
  const auto lr_pred = lr.predict(sample.history, sample.saliency, horizon);

  std::cout << "\n  t(s)   actual-yaw  netllm-yaw  lr-yaw\n" << std::fixed << std::setprecision(1);
  for (int k = 0; k < horizon; k += 2) {
    std::cout << std::setw(6) << (k + 1) / vp::kSampleHz << "  " << std::setw(10)
              << sample.future[static_cast<std::size_t>(k)].yaw << "  " << std::setw(10)
              << netllm_pred[static_cast<std::size_t>(k)].yaw << "  " << std::setw(7)
              << lr_pred[static_cast<std::size_t>(k)].yaw << "\n";
  }
  std::cout << "\nwindow MAE:  NetLLM " << std::setprecision(2)
            << vp::viewport_mae(netllm_pred, sample.future) << " deg,  LR "
            << vp::viewport_mae(lr_pred, sample.future) << " deg\n";

  std::cout << "dataset MAE: NetLLM "
            << netllm::core::mean(vp::evaluate_mae(*predictor, test_data)) << " deg,  LR "
            << netllm::core::mean(vp::evaluate_mae(lr, test_data)) << " deg\n";
  return 0;
}
